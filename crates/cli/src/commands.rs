//! Subcommand implementations.

use crate::args::Args;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex::core::{FittedJointModel, GibbsKernel, HealthMode, ModelError, TopicSummary};
use rheotex::corpus::io::{load_corpus, load_corpus_lenient, save_corpus, save_quarantine};
use rheotex::corpus::synth::{generate as synth_generate, SynthConfig};
use rheotex::corpus::{Dataset, DatasetFilter, IngredientDb};
use rheotex::pipeline::{CheckpointOptions, PipelineConfig, PipelineError, PipelineRun};
use rheotex::core::checkpoint::SamplerSnapshot;
use rheotex::resilience::CheckpointStore;
use rheotex::rheology::tpa::GelMechanics;
use rheotex::serve::{FitProvenance, ModelArtifact, Server, ServerConfig, TextureService};
use rheotex::textures::{TermId, TextureDictionary};
use rheotex_linkage::assign::assign_setting;
use rheotex_linkage::rules::mine_term_rules;
use rheotex_obs::{JsonlSink, Obs, ProgressSink, Recorder, RunReport, TraceDiagnostic};
use std::path::Path;
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
rheotex — sensory texture topics with rheological linkage

USAGE:
  rheotex generate  --recipes N [--seed S] --out corpus.jsonl [--quiet]
  rheotex fit       --corpus corpus.jsonl [--topics K] [--sweeps N] [--seed S]
                    [--threads N]
                    [--kernel serial|parallel|sparse|sparse-parallel|alias]
                    [--chains N] [--rhat-threshold R] [--fail-unconverged]
                    [--min-chains N]
                    --out-model model.json --out-dict dict.json
                    [--metrics-out metrics.jsonl] [--progress-every N] [--quiet]
                    [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
                    [--max-bad-ratio R] [--quarantine-out PATH]
                    [--health strict|recover|off] [--max-retries N]
  rheotex report    metrics.jsonl [more.jsonl ...] [--out report.json]
                    [--rhat-threshold R] [--fail-unconverged] [--quiet]
  rheotex topics    --model model.json --dict dict.json [--top N] [--json]
  rheotex assign    --model model.json --dict dict.json --gelatin PCT
                    [--kanten PCT] [--agar PCT]
  rheotex rheometer --gelatin PCT [--kanten PCT] [--agar PCT]
                    [--milk PCT] [--cream PCT] [--yolk PCT] [--sugar PCT]
                    [--albumen PCT] [--yogurt PCT]
  rheotex rules     --corpus corpus.jsonl [--min-support N]
  rheotex export-model --corpus corpus.jsonl --out model.rtm [--topics K]
                    [--sweeps N] [--seed S] [--threads N] [--kernel NAME]
                    [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
                    [--metrics-out metrics.jsonl] [--quiet]
  rheotex serve     --artifact model.rtm [--addr HOST:PORT] [--workers N]
                    [--max-batch N] [--quiet]
  rheotex help

FIT PERFORMANCE:
  --threads N          worker threads for the Gibbs sweeps (default: 0 =
                       the historical serial kernel). Any N >= 1 uses the
                       deterministic parallel kernel: results are
                       identical for every thread count, though not
                       bit-identical to the serial kernel
  --kernel NAME        name the Gibbs kernel explicitly: serial (dense
                       O(K) per token), parallel (chunked deterministic),
                       sparse (single-threaded SparseLDA-style buckets,
                       O(nnz) per token — wins at large K),
                       sparse-parallel (the sparse buckets over the
                       parallel chunk grid — any --threads N, identical
                       across thread counts; the fast path at large K),
                       or alias (O(1)-amortized alias-table
                       Metropolis-Hastings draws over the chunk grid —
                       any --threads N, identical across thread counts;
                       wins at very large K and V, stationary-exact but
                       not sweep-identical to the dense conditional).
                       serial/sparse require --threads 0; every kernel is
                       deterministic but a checkpoint resumes only under
                       the kernel that wrote it

FIT CONVERGENCE:
  --chains N           fit N independent Gibbs chains from consecutive
                       seeds (default: 1 = the historical single chain),
                       keep the chain with the best final log-likelihood,
                       and compute split R-hat / bulk ESS diagnostics
                       across the chains (streamed to --metrics-out as
                       convergence.* events). Chain 0 reproduces the
                       single-chain fit bit-for-bit. Incompatible with
                       --checkpoint-dir
  --rhat-threshold R   R-hat acceptance threshold for the convergence
                       verdict (default: 1.05)
  --fail-unconverged   exit with code 3 when any diagnosed metric's
                       R-hat exceeds the threshold (default: warn only).
                       Note: place before another --flag, like --resume
  --min-chains N       with --chains >= 2: tolerate unrecoverable chains
                       as long as at least N fit successfully (dropped
                       chains are reported; default: 0 = every chain
                       must succeed)

FIT HEALTH:
  --health MODE        run the fitting supervisor: per-sweep sentinels
                       (non-finite log-likelihood, count-total drift,
                       sparse bucket-mass drift) plus sampled deep
                       audits of the topic-count store. Modes: off (the
                       default — no supervision, the historical
                       behaviour), strict (abort the fit on the first
                       trip), recover (roll back to the last good
                       in-memory snapshot and retry deterministically;
                       a kernel that keeps failing drops one rung down
                       the alias → sparse → serial degradation ladder,
                       sparse-parallel straight to serial). A healthy
                       supervised run is bit-identical to an
                       unsupervised one
  --max-retries N      rollback budget per incident in recover mode
                       (default: 3)
  exit code 4          the supervisor declared the run unrecoverable
                       (sentinels tripped and the recovery budget or
                       chain quorum was exhausted)

REPORT:
  rheotex report reads one or more --metrics-out JSONL files and prints
  the convergence verdict per traced metric, the pipeline stage and
  sweep-phase time breakdown, and a kernel-specific profile section
  (sparse bucket masses, parallel chunk timings, alias MH acceptance
  rates, cache hit rates);
  --out additionally writes machine-readable JSON (schema
  rheotex.report/2). With --fail-unconverged the exit code is 3 when
  the run is unconverged at the R-hat threshold.

FIT OBSERVABILITY:
  --metrics-out FILE   write the structured event stream (stage spans,
                       per-sweep statistics) as JSON Lines to FILE
  --progress-every N   print every Nth sweep to stderr (default: 0 =
                       time-based, at most every 250ms)
  --quiet              silence all progress and summary output; only
                       errors are printed

FIT RESILIENCE:
  --checkpoint-dir DIR   keep a crash-consistent snapshot of the sampler
                         in DIR (single CRC-checked `latest.ckpt` file,
                         written atomically)
  --checkpoint-every N   sweeps between snapshots (default: 10; 0
                         disables snapshot writes, useful with --resume
                         to finish from an existing checkpoint)
  --resume               continue bit-identically from DIR's snapshot if
                         one exists, otherwise start fresh; requires
                         --checkpoint-dir. Note: place --resume before
                         another --flag (a bare token after it would be
                         consumed as its value)
  --max-bad-ratio R      quarantine unparsable corpus lines instead of
                         aborting, as long as at most fraction R of
                         non-empty lines fail (default: 0 = strict)
  --quarantine-out PATH  write the quarantine ledger as JSON lines (one
                         object per skipped line: lineno, byte_offset,
                         reason) so bad recipes stay auditable at scale;
                         written even when empty

SERVING:
  rheotex export-model fits the joint model (or resumes a checkpoint
  with --checkpoint-dir + --resume) and writes a versioned read-only
  serving artifact (schema rheotex.model/1): topic-word counts,
  Normal-Wishart posteriors, the Table I KL linkage, the texture
  dictionary, and fit provenance, CRC-framed like a checkpoint.
  rheotex serve loads an artifact and answers POST /v1/texture with a
  rheotex.serve/1 prediction (texture terms, rheological coordinates,
  spreadability controls, nearest Table I setting); GET /healthz
  re-verifies the artifact bytes and GET /metrics reports latency
  histograms, micro-batch sizes, and the predictive-cache hit rate.
  Fold-in is deterministic: same artifact + request + seed yields
  byte-identical responses (algorithm cvb0 is seed-free; gibbs uses
  the request's seed).
";

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("error: {msg}");
    1
}

/// `generate`: draw a synthetic corpus and write it as JSONL.
pub fn generate(args: &Args) -> i32 {
    let n = args.get_parsed_or("recipes", 3600usize);
    let seed = args.get_parsed_or("seed", 2022u64);
    let out = args.require("out");
    let db = IngredientDb::builtin();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let corpus = match synth_generate(&mut rng, &SynthConfig::small(n), &db) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    if let Err(e) = save_corpus(Path::new(out), &corpus) {
        return fail(e);
    }
    if !args.has("quiet") {
        println!("wrote {n} recipes to {out} (seed {seed})");
    }
    0
}

/// Builds the fit command's observability pipeline from its flags:
/// a progress reporter on stderr (unless `--quiet`) and a JSONL metrics
/// file (when `--metrics-out` is given). With neither, observation is
/// disabled entirely and the samplers skip all statistics work.
fn fit_observability(args: &Args) -> Result<Obs, String> {
    let quiet = args.has("quiet");
    let mut sinks: Vec<Box<dyn Recorder>> = Vec::new();
    if !quiet {
        let every = args.get_parsed_or("progress-every", 0u64);
        sinks.push(Box::new(ProgressSink::stderr(
            every,
            Duration::from_millis(250),
        )));
    }
    if let Some(path) = args.get("metrics-out") {
        let sink = JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
        sinks.push(Box::new(sink));
    }
    Ok(if sinks.is_empty() {
        Obs::disabled()
    } else {
        Obs::with_sinks(sinks)
    })
}

/// `fit`: load recipes, run stages 2–4, save model and dictionary.
pub fn fit(args: &Args) -> i32 {
    let corpus_path = args.require("corpus");
    let out_model = args.require("out-model");
    let out_dict = args.require("out-dict");
    let quiet = args.has("quiet");
    let max_bad_ratio = args.get_parsed_or("max-bad-ratio", 0.0f64);
    let checkpoint_dir = args.get("checkpoint-dir");
    let checkpoint_every = args.get_parsed_or("checkpoint-every", 10usize);
    let resume = args.has("resume");
    if resume && checkpoint_dir.is_none() {
        eprintln!("error: --resume requires --checkpoint-dir");
        return 2;
    }

    // Observability first so corpus-ingest diagnostics reach the sinks.
    let obs = match fit_observability(args) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let read = match load_corpus_lenient(Path::new(corpus_path), max_bad_ratio) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    if read.report.quarantined() > 0 {
        obs.counter("corpus.quarantined_lines", read.report.quarantined() as u64);
        if !quiet {
            let first = &read.report.lines[0];
            eprintln!(
                "quarantined {} of {} corpus lines (first: line {}: {})",
                read.report.quarantined(),
                read.report.total_lines,
                first.lineno,
                first.reason
            );
        }
    }
    if let Some(qpath) = args.get("quarantine-out") {
        if let Err(e) = save_quarantine(Path::new(qpath), &read.report) {
            return fail(e);
        }
        if !quiet {
            eprintln!(
                "wrote quarantine ledger ({} lines) to {qpath}",
                read.report.quarantined()
            );
        }
    }
    let (recipes, labels) = (read.recipes, read.labels);
    let mut config = PipelineConfig::paper_scale();
    config.n_topics = args.get_parsed_or("topics", config.n_topics);
    config.sweeps = args.get_parsed_or("sweeps", config.sweeps);
    config.burn_in = config.sweeps / 2;
    config.seed = args.get_parsed_or("seed", config.seed);
    config.threads = args.get_parsed_or("threads", config.threads);
    config.chains = args.get_parsed_or("chains", config.chains);
    config.min_chains = args.get_parsed_or("min-chains", config.min_chains);
    let rhat_threshold = args.get_parsed_or("rhat-threshold", 1.05f64);
    if let Some(kernel) = args.get("kernel") {
        match kernel.parse() {
            Ok(k) => config.kernel = Some(k),
            Err(e) => return fail(e),
        }
    }
    if let Some(mode) = args.get("health") {
        let mode: HealthMode = match mode.parse() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: --health: {e}");
                return 2;
            }
        };
        config.health = mode.policy();
        if args.get("max-retries").is_some() {
            let retries = args.get_parsed_or("max-retries", 3usize);
            config.health = config.health.map(|p| p.max_retries(retries));
        }
    }
    // Hidden test-only flag (requires building with --features
    // fault-inject): corrupt the count store after the given sweep so the
    // exit-code contract and the recovery path can be exercised
    // end-to-end from the binary.
    #[cfg(feature = "fault-inject")]
    if args.get("chaos-sweep").is_some() {
        let at_sweep = args.get_parsed_or("chaos-sweep", 0usize);
        match config.health.take() {
            Some(policy) => {
                // Audit every sweep and snapshot every sweep so the
                // injected corruption is caught before any snapshot of
                // the corrupted state could be kept (neither cadence
                // consumes RNG draws, so healthy output is unchanged).
                config.health = Some(policy.audit_every(1).snapshot_every(1).chaos(
                    rheotex::core::CountChaos {
                        at_sweep,
                        doc: 0,
                        topic: 0,
                        delta: 7,
                    },
                ));
            }
            None => {
                eprintln!("error: --chaos-sweep requires --health strict or recover");
                return 2;
            }
        }
    }

    if !quiet {
        let kernel = config
            .kernel
            .map_or_else(String::new, |k| format!(", {k} kernel"));
        let chains = if config.chains > 1 {
            format!(", {} chains", config.chains)
        } else {
            String::new()
        };
        eprintln!(
            "fitting K={} over {} recipes ({} sweeps, {} threads{kernel}{chains})…",
            config.n_topics,
            recipes.len(),
            config.sweeps,
            config.threads
        );
    }
    let mut run = PipelineRun::new(&config).observed(&obs);
    if let Some(dir) = checkpoint_dir {
        let mut opts = CheckpointOptions::new(dir, checkpoint_every);
        if resume {
            if !quiet && !CheckpointStore::new(dir).exists() {
                eprintln!("no checkpoint found in {dir}; starting fresh");
            }
            opts = opts.resume();
        }
        run = run.checkpointed(opts);
    }
    let fit = match run.fit_recipes(&recipes, &labels) {
        Ok(f) => f,
        // Unrecoverable health failures get their own exit code (4) so
        // orchestration can tell "the corpus is wrong" (1) apart from
        // "the sampler tripped its sentinels and could not recover".
        Err(e @ PipelineError::Model(ModelError::Health { .. })) => {
            eprintln!("error: {e}");
            return 4;
        }
        Err(e) => return fail(e),
    };
    if !quiet {
        let excluded: Vec<&str> = fit
            .filter_outcomes
            .iter()
            .filter(|o| !o.keep)
            .map(|o| o.term.as_str())
            .collect();
        eprintln!(
            "kept {} recipes, {} terms (excluded: {excluded:?})",
            fit.dataset.len(),
            fit.dict.len()
        );
    }
    let model_json = match serde_json::to_string(&fit.model) {
        Ok(s) => s,
        Err(e) => return fail(format!("serialize model: {e}")),
    };
    if let Err(e) = std::fs::write(out_model, model_json) {
        return fail(e);
    }
    let dict_json = match serde_json::to_string(&fit.dict) {
        Ok(s) => s,
        Err(e) => return fail(format!("serialize dictionary: {e}")),
    };
    if let Err(e) = std::fs::write(out_dict, dict_json) {
        return fail(e);
    }
    obs.flush();
    let unconverged = report_fit_convergence(&fit.diagnostics, rhat_threshold, quiet);
    if !quiet {
        let table = obs.summary_table();
        if !table.is_empty() {
            eprint!("{table}");
        }
        println!("wrote {out_model} and {out_dict}");
    }
    if unconverged && args.has("fail-unconverged") {
        eprintln!("error: chains unconverged at R-hat threshold {rhat_threshold}");
        return 3;
    }
    0
}

/// Prints the multi-chain convergence verdict to stderr (suppressed by
/// `--quiet`) and returns whether any diagnosed metric failed the R̂
/// threshold. No-chain (empty) diagnostics print nothing.
fn report_fit_convergence(
    diagnostics: &[TraceDiagnostic],
    rhat_threshold: f64,
    quiet: bool,
) -> bool {
    if diagnostics.is_empty() {
        return false;
    }
    let defined: Vec<&TraceDiagnostic> = diagnostics.iter().filter(|d| !d.rhat.is_nan()).collect();
    if defined.is_empty() {
        if !quiet {
            eprintln!("convergence: undetermined (too few post-warmup sweeps)");
        }
        return false;
    }
    let failing: Vec<String> = defined
        .iter()
        .filter(|d| !d.converged(rhat_threshold))
        .map(|d| format!("{} R-hat {:.3}", d.metric, d.rhat))
        .collect();
    if failing.is_empty() {
        if !quiet {
            eprintln!(
                "convergence: ok ({} metrics, all R-hat <= {rhat_threshold})",
                defined.len()
            );
        }
        false
    } else {
        if !quiet {
            eprintln!(
                "warning: unconverged at R-hat threshold {rhat_threshold}: {}",
                failing.join(", ")
            );
        }
        true
    }
}

/// `report`: render convergence and kernel-profile reports from one or
/// more `--metrics-out` JSONL files.
pub fn report(args: &Args) -> i32 {
    if args.positional.is_empty() {
        eprintln!("error: report needs at least one metrics JSONL file\n\n{USAGE}");
        return 2;
    }
    let quiet = args.has("quiet");
    let mut sources = Vec::with_capacity(args.positional.len());
    for path in &args.positional {
        match std::fs::read_to_string(path) {
            Ok(content) => sources.push((path.clone(), content)),
            Err(e) => return fail(format!("{path}: {e}")),
        }
    }
    let mut report = match RunReport::from_sources(&sources) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    report.rhat_threshold = args.get_parsed_or("rhat-threshold", report.rhat_threshold);
    if let Some(out) = args.get("out") {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            return fail(format!("{out}: {e}"));
        }
        if !quiet {
            eprintln!("wrote {out}");
        }
    }
    if !quiet {
        print!("{}", report.render());
    }
    if args.has("fail-unconverged") && report.converged() == Some(false) {
        eprintln!(
            "error: run unconverged at R-hat threshold {}",
            report.rhat_threshold
        );
        return 3;
    }
    0
}

fn load_model_and_dict(args: &Args) -> Result<(FittedJointModel, TextureDictionary), String> {
    let model_path = args.require("model");
    let dict_path = args.require("dict");
    let model: FittedJointModel = serde_json::from_str(
        &std::fs::read_to_string(model_path).map_err(|e| format!("{model_path}: {e}"))?,
    )
    .map_err(|e| format!("parse {model_path}: {e}"))?;
    let mut dict: TextureDictionary = serde_json::from_str(
        &std::fs::read_to_string(dict_path).map_err(|e| format!("{dict_path}: {e}"))?,
    )
    .map_err(|e| format!("parse {dict_path}: {e}"))?;
    dict.rebuild_index();
    Ok((model, dict))
}

/// `topics`: print a fitted model's topics (`--json` for machine-readable
/// output).
pub fn topics(args: &Args) -> i32 {
    let (model, dict) = match load_model_and_dict(args) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let top = args.get_parsed_or("top", 6usize);
    let summaries = match TopicSummary::from_model(&model, top, 0.01) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if args.has("json") {
        match serde_json::to_string_pretty(&summaries) {
            Ok(s) => println!("{s}"),
            Err(e) => return fail(format!("serialize summaries: {e}")),
        }
        return 0;
    }
    let gel_names = ["gelatin", "kanten", "agar"];
    let mut order: Vec<usize> = (0..summaries.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(summaries[k].n_recipes));
    for &k in &order {
        let s = &summaries[k];
        if s.n_recipes == 0 {
            continue;
        }
        let gels: Vec<String> = s
            .gel_concentration
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0015)
            .map(|(i, &c)| format!("{}:{:.2}%", gel_names[i], c * 100.0))
            .collect();
        let terms: Vec<String> = s
            .top_terms
            .iter()
            .map(|&(w, p)| format!("{}({p:.2})", dict.entry(TermId(w as u32)).surface))
            .collect();
        println!(
            "topic {k:>2} | {:<26} | {:>5} recipes | {}",
            gels.join(" "),
            s.n_recipes,
            terms.join(" ")
        );
    }
    0
}

/// `assign`: map a gel setting to its most similar topic.
pub fn assign(args: &Args) -> i32 {
    let (model, dict) = match load_model_and_dict(args) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let gels = [
        args.get_parsed_or("gelatin", 0.0f64) / 100.0,
        args.get_parsed_or("kanten", 0.0f64) / 100.0,
        args.get_parsed_or("agar", 0.0f64) / 100.0,
    ];
    let a = match assign_setting(&model, 0, gels) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    println!("topic {} (KL {:.3})", a.topic, a.kl);
    for (w, p) in model.top_terms(a.topic, 6) {
        if p < 0.02 {
            continue;
        }
        let e = dict.entry(TermId(w as u32));
        println!("  {:<14} {:<48} p={p:.2}", e.surface, e.gloss);
    }
    0
}

/// `rheometer`: simulate the TPA instrument for a composition.
pub fn rheometer(args: &Args) -> i32 {
    let gels = [
        args.get_parsed_or("gelatin", 0.0f64) / 100.0,
        args.get_parsed_or("kanten", 0.0f64) / 100.0,
        args.get_parsed_or("agar", 0.0f64) / 100.0,
    ];
    let emulsions = [
        args.get_parsed_or("sugar", 0.0f64) / 100.0,
        args.get_parsed_or("albumen", 0.0f64) / 100.0,
        args.get_parsed_or("yolk", 0.0f64) / 100.0,
        args.get_parsed_or("cream", 0.0f64) / 100.0,
        args.get_parsed_or("milk", 0.0f64) / 100.0,
        args.get_parsed_or("yogurt", 0.0f64) / 100.0,
    ];
    let attrs = GelMechanics::from_composition(gels, emulsions).predicted_attributes();
    println!("hardness     = {:.3} RU", attrs.hardness);
    println!("cohesiveness = {:.3}", attrs.cohesiveness);
    println!("adhesiveness = {:.3} RU.s", attrs.adhesiveness);
    0
}

/// Best-effort git revision of the working tree, for artifact
/// provenance. `None` when git is absent or this is not a checkout.
fn git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

/// `export-model`: fit the joint model (or resume a checkpoint) and
/// write the versioned `rheotex.model/1` serving artifact.
///
/// The artifact ships the raw sampler counts, so the fit always runs
/// checkpointed and the final snapshot is the export source: into
/// `--checkpoint-dir` when given (resumable across crashes), otherwise
/// into a temporary directory that is removed afterwards.
pub fn export_model(args: &Args) -> i32 {
    let corpus_path = args.require("corpus");
    let out = args.require("out");
    let quiet = args.has("quiet");
    let resume = args.has("resume");
    if resume && args.get("checkpoint-dir").is_none() {
        eprintln!("error: --resume requires --checkpoint-dir");
        return 2;
    }

    let obs = match fit_observability(args) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let (recipes, labels) = match load_corpus(Path::new(corpus_path)) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let mut config = PipelineConfig::paper_scale();
    config.n_topics = args.get_parsed_or("topics", config.n_topics);
    config.sweeps = args.get_parsed_or("sweeps", config.sweeps);
    config.burn_in = config.sweeps / 2;
    config.seed = args.get_parsed_or("seed", config.seed);
    config.threads = args.get_parsed_or("threads", config.threads);
    if let Some(kernel) = args.get("kernel") {
        match kernel.parse() {
            Ok(k) => config.kernel = Some(k),
            Err(e) => return fail(e),
        }
    }

    let (dir, ephemeral) = match args.get("checkpoint-dir") {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("rheotex-export-{}", std::process::id())),
            true,
        ),
    };
    // The final snapshot only lands when the cadence divides the sweep
    // count, so that is the default — and the invariant is re-checked
    // against the loaded snapshot below.
    let every = args.get_parsed_or("checkpoint-every", config.sweeps);
    if every == 0 || config.sweeps % every != 0 {
        eprintln!(
            "error: --checkpoint-every {every} leaves no final snapshot to \
             export; use a divisor of --sweeps {}",
            config.sweeps
        );
        return 2;
    }
    let resumed = resume && CheckpointStore::new(&dir).exists();
    let mut opts = CheckpointOptions::new(&dir, every);
    if resume {
        if !quiet && !resumed {
            eprintln!("no checkpoint found in {}; starting fresh", dir.display());
        }
        opts = opts.resume();
    }

    if !quiet {
        let kernel = config
            .kernel
            .map_or_else(String::new, |k| format!(", {k} kernel"));
        eprintln!(
            "fitting K={} over {} recipes for export ({} sweeps, {} threads{kernel})…",
            config.n_topics,
            recipes.len(),
            config.sweeps,
            config.threads
        );
    }
    let fit = match PipelineRun::new(&config)
        .observed(&obs)
        .checkpointed(opts)
        .fit_recipes(&recipes, &labels)
    {
        Ok(f) => f,
        Err(e @ PipelineError::Model(ModelError::Health { .. })) => {
            eprintln!("error: {e}");
            return 4;
        }
        Err(e) => return fail(e),
    };
    let snapshot = match CheckpointStore::new(&dir).load() {
        Ok(SamplerSnapshot::Joint(s)) => s,
        Ok(_) => return fail("checkpoint is not a joint-model snapshot"),
        Err(e) => return fail(format!("load final checkpoint: {e}")),
    };
    if snapshot.next_sweep < config.sweeps {
        return fail(format!(
            "final checkpoint covers only {}/{} sweeps; re-run with a \
             --checkpoint-every that divides --sweeps",
            snapshot.next_sweep, config.sweeps
        ));
    }
    let provenance = FitProvenance {
        kernel: snapshot.kernel.unwrap_or(if config.threads == 0 {
            GibbsKernel::Serial
        } else {
            GibbsKernel::Parallel
        }),
        seed: config.seed,
        threads: config.threads,
        source: if resumed {
            format!("checkpoint:{}", dir.display())
        } else {
            "fresh-fit".to_string()
        },
        git_revision: git_revision(),
        host: std::env::var("HOSTNAME").ok().filter(|h| !h.is_empty()),
    };
    let artifact = match ModelArtifact::build(&fit.model, &snapshot, &fit.dict, provenance) {
        Ok(a) => a,
        Err(e) => return fail(format!("build artifact: {e}")),
    };
    if let Err(e) = artifact.save(Path::new(out)) {
        return fail(format!("{out}: {e}"));
    }
    if ephemeral {
        std::fs::remove_dir_all(&dir).ok();
    }
    obs.flush();
    if !quiet {
        println!(
            "wrote {out} (schema {}, K={}, vocab {}, {} kernel, seed {})",
            artifact.schema,
            artifact.config.n_topics,
            artifact.config.vocab_size,
            artifact.provenance.kernel,
            artifact.provenance.seed
        );
    }
    0
}

/// `serve`: load a `rheotex.model/1` artifact and answer texture
/// inference requests over HTTP until killed.
pub fn serve(args: &Args) -> i32 {
    let artifact_path = args.require("artifact");
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let workers = args.get_parsed_or("workers", ServerConfig::default().workers);
    let max_batch = args.get_parsed_or("max-batch", ServerConfig::default().max_batch);
    let quiet = args.has("quiet");
    if workers == 0 || max_batch == 0 {
        eprintln!("error: --workers and --max-batch must be >= 1");
        return 2;
    }
    let service = match TextureService::open(Path::new(artifact_path)) {
        Ok(s) => s,
        Err(e) => return fail(format!("{artifact_path}: {e}")),
    };
    if !quiet {
        let a = service.artifact();
        eprintln!(
            "loaded {artifact_path} (schema {}, K={}, vocab {}, {} kernel, seed {})",
            a.schema,
            a.config.n_topics,
            a.config.vocab_size,
            a.provenance.kernel,
            a.provenance.seed
        );
    }
    let server = match Server::bind(addr, std::sync::Arc::new(service), ServerConfig {
        workers,
        max_batch,
    }) {
        Ok(s) => s,
        Err(e) => return fail(format!("bind {addr}: {e}")),
    };
    if !quiet {
        eprintln!(
            "serving on http://{} ({workers} workers, micro-batch {max_batch}; \
             POST /v1/texture, GET /healthz, GET /metrics)",
            server.local_addr()
        );
    }
    server.join();
    0
}

/// `rules`: mine term → concentration association rules from a corpus.
pub fn rules(args: &Args) -> i32 {
    let corpus_path = args.require("corpus");
    let min_support = args.get_parsed_or("min-support", 10usize);
    let (recipes, labels) = match load_corpus(Path::new(corpus_path)) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let db = IngredientDb::builtin();
    let dict = TextureDictionary::comprehensive();
    let dataset = match Dataset::build(&recipes, &labels, &db, &dict, DatasetFilter::default()) {
        Ok(d) => d,
        Err(e) => return fail(e),
    };
    let gel_names = ["gelatin", "kanten", "agar"];
    let mined = mine_term_rules(&dataset.features, &dict, min_support);
    println!(
        "{:>14} {:>8} {:>10} {:>16} {:>6}",
        "term", "support", "lift", "dominant gel", "conc%"
    );
    for r in mined.iter().take(20) {
        println!(
            "{:>14} {:>8} {:>10.2} {:>16} {:>6.2}",
            r.surface,
            r.support,
            r.lift,
            gel_names[r.dominant_gel.0],
            r.dominant_gel.1 * 100.0
        );
    }
    0
}

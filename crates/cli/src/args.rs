//! Minimal hand-rolled flag parser (the workspace's dependency policy
//! excludes clap; the surface here is small enough not to miss it).
//!
//! Supports `--flag value` and `--flag` (boolean) forms. Positional
//! arguments are collected in order. Known limitation (acceptable for
//! this CLI, which takes no positionals after flags): a boolean flag
//! followed by a bare token greedily consumes it as a value.

use std::collections::HashMap;

/// Parsed command-line arguments: the subcommand, its flags, and
/// positionals.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First non-flag token (the subcommand).
    pub command: Option<String>,
    flags: HashMap<String, String>,
    bools: Vec<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses an argument list (without the program name).
    #[must_use]
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                // Value-taking if the next token exists and is not a flag.
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        if let Some(value) = iter.next() {
                            out.flags.insert(name.to_string(), value);
                        }
                    }
                    _ => out.bools.push(name.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// Parses from the process environment.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// String flag value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Typed flag with default; exits with a message on parse failure.
    #[must_use]
    pub fn get_parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("error: --{name} expects a {}", std::any::type_name::<T>());
                std::process::exit(2);
            }),
        }
    }

    /// Whether a boolean flag was given.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name) || self.flags.contains_key(name)
    }

    /// Required string flag; exits with a message when missing.
    #[must_use]
    pub fn require(&self, name: &str) -> &str {
        self.get(name).unwrap_or_else(|| {
            eprintln!("error: missing required flag --{name}");
            std::process::exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn subcommand_flags_positionals() {
        let a = parse("fit extra --corpus c.jsonl --topics 10 --paper");
        assert_eq!(a.command.as_deref(), Some("fit"));
        assert_eq!(a.get("corpus"), Some("c.jsonl"));
        assert_eq!(a.get_parsed_or("topics", 0usize), 10);
        assert!(a.has("paper"));
        assert_eq!(a.positional, vec!["extra".to_string()]);
    }

    #[test]
    fn boolean_flag_greedily_takes_following_token() {
        // Documented limitation: `--paper extra` parses as paper="extra".
        let a = parse("fit --paper extra");
        assert!(a.has("paper"));
        assert_eq!(a.get("paper"), Some("extra"));
        assert!(a.positional.is_empty());
    }

    #[test]
    fn boolean_at_end() {
        let a = parse("generate --seed 7 --verbose");
        assert_eq!(a.get_parsed_or("seed", 0u64), 7);
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("topics");
        assert_eq!(a.get_parsed_or("top", 5usize), 5);
        assert!(a.get("model").is_none());
    }

    #[test]
    fn negative_numbers_are_values() {
        let a = parse("assign --gelatin 2.5 --kanten 0");
        assert!((a.get_parsed_or("gelatin", 0.0f64) - 2.5).abs() < 1e-12);
        assert_eq!(a.get_parsed_or("kanten", 1.0f64), 0.0);
    }
}

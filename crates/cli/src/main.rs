//! `rheotex` — command-line interface to the texture-topic pipeline.
//!
//! ```text
//! rheotex generate  --recipes 3600 --seed 2022 --out corpus.jsonl
//! rheotex fit       --corpus corpus.jsonl --topics 10 --sweeps 400
//!                   --out-model model.json --out-dict dict.json
//! rheotex report    metrics.jsonl [--out report.json]
//! rheotex topics    --model model.json --dict dict.json [--top 8]
//! rheotex assign    --model model.json --dict dict.json
//!                   --gelatin 2.5 [--kanten 0] [--agar 0]
//! rheotex rheometer --gelatin 2.5 [--kanten 0] [--agar 0]
//!                   [--milk 78.7] [--cream 0] [--yolk 0] [--sugar 0]
//! rheotex rules     --corpus corpus.jsonl [--min-support 10]
//! rheotex export-model --corpus corpus.jsonl --out model.rtm
//!                   [--topics 10] [--sweeps 400] [--kernel sparse-parallel]
//! rheotex serve     --artifact model.rtm [--addr 127.0.0.1:7878]
//!                   [--workers 2] [--max-batch 8]
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let args = Args::from_env();
    let code = match args.command.as_deref() {
        Some("generate") => commands::generate(&args),
        Some("fit") => commands::fit(&args),
        Some("report") => commands::report(&args),
        Some("topics") => commands::topics(&args),
        Some("assign") => commands::assign(&args),
        Some("rheometer") => commands::rheometer(&args),
        Some("rules") => commands::rules(&args),
        Some("export-model") => commands::export_model(&args),
        Some("serve") => commands::serve(&args),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{}", commands::USAGE);
            2
        }
    };
    std::process::exit(code);
}

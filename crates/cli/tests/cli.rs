//! Integration tests driving the compiled `rheotex` binary end to end.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rheotex"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rheotex_cli_{name}"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("rheotex fit"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_required_flag_exits_2() {
    let out = bin().args(["generate"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn rheometer_prints_attributes() {
    let out = bin()
        .args(["rheometer", "--gelatin", "2.5", "--milk", "78.7"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hardness"), "{text}");
    assert!(text.contains("cohesiveness"));
    assert!(text.contains("adhesiveness"));
}

#[test]
fn generate_fit_topics_assign_workflow() {
    let dir = tmpdir("workflow");
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let dict = dir.join("dict.json");

    // generate
    let out = bin()
        .args([
            "generate",
            "--recipes",
            "350",
            "--seed",
            "7",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(corpus.exists());

    // fit (short chain for test speed)
    let out = bin()
        .args([
            "fit",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--sweeps",
            "40",
            "--out-model",
            model.to_str().unwrap(),
            "--out-dict",
            dict.to_str().unwrap(),
        ])
        .output()
        .expect("fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists() && dict.exists());

    // topics (human and JSON forms)
    let out = bin()
        .args([
            "topics",
            "--model",
            model.to_str().unwrap(),
            "--dict",
            dict.to_str().unwrap(),
        ])
        .output()
        .expect("topics");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("topic"), "{text}");
    assert!(text.contains("recipes"));

    let out = bin()
        .args([
            "topics",
            "--model",
            model.to_str().unwrap(),
            "--dict",
            dict.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("topics json");
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(parsed.as_array().is_some_and(|a| a.len() == 8));

    // assign
    let out = bin()
        .args([
            "assign",
            "--model",
            model.to_str().unwrap(),
            "--dict",
            dict.to_str().unwrap(),
            "--gelatin",
            "0.9",
        ])
        .output()
        .expect("assign");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("topic"));

    // rules over the same corpus
    let out = bin()
        .args([
            "rules",
            "--corpus",
            corpus.to_str().unwrap(),
            "--min-support",
            "5",
        ])
        .output()
        .expect("rules");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("lift"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_metrics_out_writes_valid_jsonl_and_quiet_silences_stderr() {
    let dir = tmpdir("metrics");
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let dict = dir.join("dict.json");
    let metrics = dir.join("metrics.jsonl");

    let out = bin()
        .args([
            "generate",
            "--recipes",
            "300",
            "--seed",
            "11",
            "--out",
            corpus.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "--quiet generate must print nothing");

    let sweeps = 30usize;
    let out = bin()
        .args([
            "fit",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "6",
            "--sweeps",
            &sweeps.to_string(),
            "--out-model",
            model.to_str().unwrap(),
            "--out-dict",
            dict.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --quiet: nothing but errors on either stream.
    assert!(
        out.stderr.is_empty(),
        "--quiet fit must keep stderr empty, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "--quiet fit must keep stdout empty");

    // The metrics file is non-empty JSONL where every line parses.
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "metrics file must not be empty");
    let mut sweep_events = 0usize;
    let mut stage_spans = 0usize;
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("every line is valid JSON");
        assert!(v["t_us"].is_u64(), "{line}");
        assert!(v["kind"].is_string(), "{line}");
        assert!(v["name"].is_string(), "{line}");
        if v["kind"] == "sweep" {
            sweep_events += 1;
            assert!(v["fields"]["ll"].is_number(), "{line}");
            assert!(v["fields"]["elapsed_us"].is_u64(), "{line}");
        }
        if v["kind"] == "span_end" && v["name"].as_str().unwrap().starts_with("stage.") {
            stage_spans += 1;
        }
    }
    // Exactly one sweep event per Gibbs sweep; one span per stage 2–4.
    assert_eq!(sweep_events, sweeps);
    assert_eq!(stage_spans, 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_progress_reports_on_stderr_by_default() {
    let dir = tmpdir("progress");
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let dict = dir.join("dict.json");

    let out = bin()
        .args([
            "generate",
            "--recipes",
            "250",
            "--seed",
            "3",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());

    let out = bin()
        .args([
            "fit",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "6",
            "--sweeps",
            "20",
            "--progress-every",
            "10",
            "--out-model",
            model.to_str().unwrap(),
            "--out-dict",
            dict.to_str().unwrap(),
        ])
        .output()
        .expect("fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // Sweep progress lines and the end-of-run summary table.
    assert!(err.contains("joint.sweep"), "{err}");
    assert!(err.contains("stage.fit"), "{err}");
    assert!(err.contains("timers"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_checkpoint_and_resume_reproduce_identical_models() {
    let dir = tmpdir("checkpoint");
    let corpus = dir.join("corpus.jsonl");
    let ckpt = dir.join("ckpt");
    let model_plain = dir.join("model_plain.json");
    let model_a = dir.join("model_a.json");
    let model_b = dir.join("model_b.json");
    let dict = dir.join("dict.json");

    let out = bin()
        .args([
            "generate",
            "--recipes",
            "250",
            "--seed",
            "5",
            "--out",
            corpus.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let fit_args = |model: &std::path::Path| {
        vec![
            "fit".to_string(),
            "--corpus".to_string(),
            corpus.to_str().unwrap().to_string(),
            "--topics".to_string(),
            "6".to_string(),
            "--sweeps".to_string(),
            "20".to_string(),
            "--seed".to_string(),
            "13".to_string(),
            "--out-model".to_string(),
            model.to_str().unwrap().to_string(),
            "--out-dict".to_string(),
            dict.to_str().unwrap().to_string(),
        ]
    };

    // Ground truth: a plain fit with no checkpointing at all.
    let out = bin().args(fit_args(&model_plain)).output().expect("fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Checkpointed fit with --resume against an empty directory: warns,
    // starts fresh, and must match the plain fit exactly.
    let mut args = fit_args(&model_a);
    args.extend([
        "--resume".to_string(),
        "--checkpoint-dir".to_string(),
        ckpt.to_str().unwrap().to_string(),
        "--checkpoint-every".to_string(),
        "5".to_string(),
    ]);
    let out = bin().args(&args).output().expect("checkpointed fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no checkpoint found"),
        "--resume on an empty dir must say it is starting fresh"
    );
    assert!(ckpt.join("latest.ckpt").exists());
    let plain = std::fs::read(&model_plain).expect("plain model");
    let a = std::fs::read(&model_a).expect("checkpointed model");
    assert_eq!(plain, a, "checkpointing must not perturb the fit");

    // Resume from the final snapshot (next_sweep == sweeps): only
    // finalization reruns, so the output must be byte-identical.
    let mut args = fit_args(&model_b);
    args.extend([
        "--resume".to_string(),
        "--checkpoint-dir".to_string(),
        ckpt.to_str().unwrap().to_string(),
        "--checkpoint-every".to_string(),
        "5".to_string(),
    ]);
    let out = bin().args(&args).output().expect("resumed fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let b = std::fs::read(&model_b).expect("resumed model");
    assert_eq!(a, b, "resume must be bit-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_resume_without_checkpoint_dir_exits_2() {
    let out = bin()
        .args([
            "fit",
            "--corpus",
            "/tmp/whatever.jsonl",
            "--out-model",
            "/tmp/m",
            "--out-dict",
            "/tmp/d",
            "--resume",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"));
}

#[test]
fn fit_quarantines_mangled_corpus_lines_within_budget() {
    let dir = tmpdir("quarantine");
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let dict = dir.join("dict.json");

    let out = bin()
        .args([
            "generate",
            "--recipes",
            "250",
            "--seed",
            "9",
            "--out",
            corpus.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());

    // Mangle the corpus with one unparsable record.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&corpus)
        .expect("open corpus");
    writeln!(f, "{{{{not json").expect("append garbage");
    drop(f);

    let fit_args = |extra: &[&str]| {
        let mut v = vec![
            "fit".to_string(),
            "--corpus".to_string(),
            corpus.to_str().unwrap().to_string(),
            "--topics".to_string(),
            "6".to_string(),
            "--sweeps".to_string(),
            "10".to_string(),
            "--out-model".to_string(),
            model.to_str().unwrap().to_string(),
            "--out-dict".to_string(),
            dict.to_str().unwrap().to_string(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    // Default budget is zero: one bad line must abort the fit.
    let out = bin().args(fit_args(&[])).output().expect("strict fit");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unparsable"));

    // With a budget the bad line is quarantined and the fit proceeds.
    let out = bin()
        .args(fit_args(&["--max-bad-ratio", "0.05"]))
        .output()
        .expect("lenient fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quarantined 1 of"), "{err}");
    assert!(err.contains("line 251"), "{err}");
    assert!(model.exists() && dict.exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_chains_emits_convergence_and_report_renders() {
    let dir = tmpdir("chains");
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let dict = dir.join("dict.json");
    let metrics = dir.join("metrics.jsonl");
    let report_json = dir.join("report.json");

    let out = bin()
        .args([
            "generate",
            "--recipes",
            "250",
            "--seed",
            "17",
            "--out",
            corpus.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());

    let sweeps = 20usize;
    let out = bin()
        .args([
            "fit",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "6",
            "--sweeps",
            &sweeps.to_string(),
            "--chains",
            "2",
            "--out-model",
            model.to_str().unwrap(),
            "--out-dict",
            dict.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // The fit summary carries the convergence verdict (ok or warning).
    assert!(
        err.contains("convergence") || err.contains("unconverged"),
        "{err}"
    );

    // The metrics file carries both chains' sweeps (tagged) and the
    // convergence events.
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    let mut sweep_events = 0usize;
    let mut chain_tagged = 0usize;
    let mut convergence_events = 0usize;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        if v["kind"] == "sweep" {
            sweep_events += 1;
            if v["fields"]["chain"].is_u64() {
                chain_tagged += 1;
            }
        }
        if v["kind"] == "convergence" {
            convergence_events += 1;
            assert!(v["fields"]["rhat"].is_number(), "{line}");
            assert!(v["fields"]["chains"].is_u64(), "{line}");
        }
    }
    assert_eq!(sweep_events, 2 * sweeps);
    assert_eq!(chain_tagged, 2 * sweeps, "every sweep must be chain-tagged");
    assert!(convergence_events > 0, "no convergence events in metrics");

    // `rheotex report` renders the human report and writes report.json.
    let out = bin()
        .args([
            "report",
            metrics.to_str().unwrap(),
            "--out",
            report_json.to_str().unwrap(),
        ])
        .output()
        .expect("report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("convergence"), "{text}");
    assert!(text.contains("R-hat"), "{text}");
    assert!(text.contains("phase"), "{text}");
    assert!(text.contains("joint"), "{text}");

    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_json).expect("report.json"))
            .expect("report.json parses");
    assert_eq!(parsed["schema"], "rheotex.report/2");
    assert!(parsed["rhat_threshold"].is_number());
    let engines = parsed["engines"].as_array().expect("engines array");
    assert!(!engines.is_empty());
    assert_eq!(engines[0]["engine"], "joint");
    assert_eq!(engines[0]["chains"].as_array().unwrap().len(), 2);
    assert!(parsed["convergence"].as_array().is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_chains_with_checkpointing_fails_cleanly() {
    let dir = tmpdir("chains_ckpt");
    let corpus = dir.join("corpus.jsonl");
    let out = bin()
        .args([
            "generate",
            "--recipes",
            "200",
            "--seed",
            "21",
            "--out",
            corpus.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());

    let out = bin()
        .args([
            "fit",
            "--corpus",
            corpus.to_str().unwrap(),
            "--sweeps",
            "10",
            "--chains",
            "2",
            "--checkpoint-dir",
            dir.join("ckpt").to_str().unwrap(),
            "--out-model",
            dir.join("m.json").to_str().unwrap(),
            "--out-dict",
            dir.join("d.json").to_str().unwrap(),
        ])
        .output()
        .expect("fit");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot be checkpointed"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_without_inputs_exits_2() {
    let out = bin().arg("report").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("metrics"));
}

#[test]
fn report_rejects_missing_file() {
    let out = bin()
        .args(["report", "/nonexistent/metrics.jsonl"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn fit_rejects_unknown_kernel_with_the_legal_matrix() {
    let dir = tmpdir("bad_kernel");
    let corpus = dir.join("corpus.jsonl");
    let gen = bin()
        .args([
            "generate",
            "--recipes",
            "40",
            "--seed",
            "9",
            "--out",
            corpus.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("generate");
    assert!(gen.status.success());
    let out = bin()
        .args([
            "fit",
            "--corpus",
            corpus.to_str().unwrap(),
            "--kernel",
            "turbo",
            "--out-model",
            dir.join("m.json").to_str().unwrap(),
            "--out-dict",
            dir.join("d.json").to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown kernel"), "{err}");
    // The error enumerates the full legal kernel x threads matrix.
    for combo in [
        "serial (threads == 0)",
        "sparse (threads == 0)",
        "parallel (any threads)",
        "sparse-parallel (any threads)",
        "alias (any threads)",
    ] {
        assert!(err.contains(combo), "missing {combo:?} in {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_rejects_missing_corpus() {
    let out = bin()
        .args([
            "fit",
            "--corpus",
            "/nonexistent/x.jsonl",
            "--out-model",
            "/tmp/m",
            "--out-dict",
            "/tmp/d",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

/// Generates a small corpus into `dir` and returns the fit argument
/// vector writing `model.json` / `dict.json` there.
fn health_fixture(dir: &std::path::Path) -> Vec<String> {
    let corpus = dir.join("corpus.jsonl");
    let out = bin()
        .args([
            "generate",
            "--recipes",
            "250",
            "--seed",
            "13",
            "--out",
            corpus.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());
    [
        "fit",
        "--corpus",
        corpus.to_str().unwrap(),
        "--topics",
        "6",
        "--sweeps",
        "12",
        "--out-model",
        dir.join("model.json").to_str().unwrap(),
        "--out-dict",
        dir.join("dict.json").to_str().unwrap(),
        "--quiet",
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

#[test]
fn fit_health_recover_is_bit_identical_and_bad_mode_exits_2() {
    let dir = tmpdir("health");
    let base = health_fixture(&dir);

    let out = bin().args(&base).output().expect("plain fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let plain_model = std::fs::read(dir.join("model.json")).expect("model");

    let mut supervised = base.clone();
    supervised.extend(["--health".into(), "recover".into()]);
    let out = bin().args(&supervised).output().expect("supervised fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(dir.join("model.json")).expect("model"),
        plain_model,
        "healthy supervised fit must be bit-identical"
    );

    let mut bad = base;
    bad.extend(["--health".into(), "bogus".into()]);
    let out = bin().args(&bad).output().expect("bad mode");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--health"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_writes_quarantine_sidecar() {
    let dir = tmpdir("quarantine_sidecar");
    let base = health_fixture(&dir);
    let corpus = dir.join("corpus.jsonl");
    let sidecar = dir.join("quarantine.jsonl");

    // Mangle the corpus with one unparsable record.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&corpus)
        .expect("open corpus");
    writeln!(f, "{{{{not json").expect("append garbage");
    drop(f);

    let mut args = base;
    args.extend([
        "--max-bad-ratio".into(),
        "0.05".into(),
        "--quarantine-out".into(),
        sidecar.to_str().unwrap().into(),
    ]);
    let out = bin().args(&args).output().expect("fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&sidecar).expect("sidecar written");
    let lines: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("sidecar line parses"))
        .collect();
    assert_eq!(lines.len(), 1);
    assert_eq!(lines[0]["lineno"], 251);
    assert!(lines[0]["byte_offset"].is_u64());
    assert!(lines[0]["reason"].is_string());

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
#[test]
fn fit_chaos_recovers_bit_identically_and_strict_exits_4() {
    let dir = tmpdir("health_chaos");
    let base = health_fixture(&dir);

    let out = bin().args(&base).output().expect("clean fit");
    assert!(out.status.success());
    let clean_model = std::fs::read(dir.join("model.json")).expect("model");

    // Recovery: the injected corruption is rolled back and the final
    // model is bit-identical to the clean run's.
    let mut recover = base.clone();
    recover.extend([
        "--health".into(),
        "recover".into(),
        "--chaos-sweep".into(),
        "4".into(),
    ]);
    let out = bin().args(&recover).output().expect("recover fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(dir.join("model.json")).expect("model"),
        clean_model,
        "recovered fit must be bit-identical to the clean run"
    );

    // Strict mode aborts on the same fault with the health exit code.
    let mut strict = base.clone();
    strict.extend([
        "--health".into(),
        "strict".into(),
        "--chaos-sweep".into(),
        "4".into(),
    ]);
    let out = bin().args(&strict).output().expect("strict fit");
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unrecoverable"));

    // Chaos without supervision is a usage error.
    let mut bare = base;
    bare.extend(["--chaos-sweep".into(), "4".into()]);
    let out = bin().args(&bare).output().expect("bare chaos");
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

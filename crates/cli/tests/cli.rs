//! Integration tests driving the compiled `rheotex` binary end to end.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rheotex"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rheotex_cli_{name}"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("rheotex fit"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_required_flag_exits_2() {
    let out = bin().args(["generate"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn rheometer_prints_attributes() {
    let out = bin()
        .args(["rheometer", "--gelatin", "2.5", "--milk", "78.7"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hardness"), "{text}");
    assert!(text.contains("cohesiveness"));
    assert!(text.contains("adhesiveness"));
}

#[test]
fn generate_fit_topics_assign_workflow() {
    let dir = tmpdir("workflow");
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let dict = dir.join("dict.json");

    // generate
    let out = bin()
        .args([
            "generate",
            "--recipes",
            "350",
            "--seed",
            "7",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(corpus.exists());

    // fit (short chain for test speed)
    let out = bin()
        .args([
            "fit",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--sweeps",
            "40",
            "--out-model",
            model.to_str().unwrap(),
            "--out-dict",
            dict.to_str().unwrap(),
        ])
        .output()
        .expect("fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists() && dict.exists());

    // topics (human and JSON forms)
    let out = bin()
        .args([
            "topics",
            "--model",
            model.to_str().unwrap(),
            "--dict",
            dict.to_str().unwrap(),
        ])
        .output()
        .expect("topics");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("topic"), "{text}");
    assert!(text.contains("recipes"));

    let out = bin()
        .args([
            "topics",
            "--model",
            model.to_str().unwrap(),
            "--dict",
            dict.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("topics json");
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(parsed.as_array().is_some_and(|a| a.len() == 8));

    // assign
    let out = bin()
        .args([
            "assign",
            "--model",
            model.to_str().unwrap(),
            "--dict",
            dict.to_str().unwrap(),
            "--gelatin",
            "0.9",
        ])
        .output()
        .expect("assign");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("topic"));

    // rules over the same corpus
    let out = bin()
        .args([
            "rules",
            "--corpus",
            corpus.to_str().unwrap(),
            "--min-support",
            "5",
        ])
        .output()
        .expect("rules");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("lift"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fit_rejects_missing_corpus() {
    let out = bin()
        .args([
            "fit",
            "--corpus",
            "/nonexistent/x.jsonl",
            "--out-model",
            "/tmp/m",
            "--out-dict",
            "/tmp/d",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

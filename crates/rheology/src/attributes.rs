//! The three instrumental texture attributes and their units.
//!
//! Rheometer products do not share a standardized unit; the paper converts
//! all source measurements to **RU** (rheological unit), the unit of the
//! original Texturometer (Friedman, Whitney & Szczesniak 1963) that the
//! related literature predominantly uses. We adopt the conventional
//! equivalence 1 RU ≈ 9.8 N (1 kgf) for force-like readings.

use serde::{Deserialize, Serialize};

/// Force-like measurement units appearing in the source literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RheoUnit {
    /// Rheological unit of the Texturometer (the paper's target unit).
    Ru,
    /// Newtons.
    Newton,
    /// Kilogram-force (kgf); numerically equal to RU under our convention.
    KilogramForce,
    /// Gram-force.
    GramForce,
}

impl RheoUnit {
    /// Conversion factor to RU (multiply a value in `self` by this).
    #[must_use]
    pub fn to_ru_factor(self) -> f64 {
        match self {
            RheoUnit::Ru | RheoUnit::KilogramForce => 1.0,
            RheoUnit::Newton => 1.0 / 9.8,
            RheoUnit::GramForce => 1.0e-3,
        }
    }

    /// Converts a value in this unit to RU.
    #[must_use]
    pub fn to_ru(self, value: f64) -> f64 {
        value * self.to_ru_factor()
    }
}

/// Quantitative texture of one sample, in RU where applicable.
///
/// * `hardness` — peak force of the first compression (F1), RU.
/// * `cohesiveness` — area ratio of second to first compression (c/a),
///   dimensionless in `[0, 1]`-ish range.
/// * `adhesiveness` — cumulative negative force during the first
///   ascending action (area b), RU·s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TextureAttributes {
    /// Peak first-bite force, RU.
    pub hardness: f64,
    /// Second/first compression work ratio, dimensionless.
    pub cohesiveness: f64,
    /// Negative (pull-off) work during first withdrawal, RU·s.
    pub adhesiveness: f64,
}

impl TextureAttributes {
    /// Constructor.
    #[must_use]
    pub fn new(hardness: f64, cohesiveness: f64, adhesiveness: f64) -> Self {
        Self {
            hardness,
            cohesiveness,
            adhesiveness,
        }
    }

    /// Converts force-like components measured in `unit` into RU.
    /// Cohesiveness is a ratio and passes through unchanged.
    #[must_use]
    pub fn converted_from(self, unit: RheoUnit) -> Self {
        let f = unit.to_ru_factor();
        Self {
            hardness: self.hardness * f,
            cohesiveness: self.cohesiveness,
            adhesiveness: self.adhesiveness * f,
        }
    }

    /// Relative difference against another measurement, as the max over
    /// the three attributes of `|a−b| / max(|a|, |b|, floor)`. Used by
    /// experiment harnesses to report paper-vs-simulated agreement.
    #[must_use]
    pub fn relative_gap(&self, other: &Self, floor: f64) -> f64 {
        let gap = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(floor);
        gap(self.hardness, other.hardness)
            .max(gap(self.cohesiveness, other.cohesiveness))
            .max(gap(self.adhesiveness, other.adhesiveness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(RheoUnit::Ru.to_ru(2.5), 2.5);
        assert_eq!(RheoUnit::KilogramForce.to_ru(2.5), 2.5);
        assert!((RheoUnit::Newton.to_ru(9.8) - 1.0).abs() < 1e-12);
        assert!((RheoUnit::GramForce.to_ru(1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conversion_leaves_cohesiveness_alone() {
        let a = TextureAttributes::new(9.8, 0.5, 19.6).converted_from(RheoUnit::Newton);
        assert!((a.hardness - 1.0).abs() < 1e-12);
        assert_eq!(a.cohesiveness, 0.5);
        assert!((a.adhesiveness - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_gap_zero_for_identical() {
        let a = TextureAttributes::new(1.0, 0.5, 0.2);
        assert_eq!(a.relative_gap(&a, 0.1), 0.0);
    }

    #[test]
    fn relative_gap_uses_worst_attribute() {
        let a = TextureAttributes::new(1.0, 0.5, 0.0);
        let b = TextureAttributes::new(1.0, 0.25, 0.0);
        // cohesiveness differs by factor 2 → gap 0.5
        assert!((a.relative_gap(&b, 0.1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_gap_floor_prevents_blowup_near_zero() {
        let a = TextureAttributes::new(0.0, 0.0, 0.0);
        let b = TextureAttributes::new(0.0, 0.0, 0.01);
        assert!(a.relative_gap(&b, 0.5) <= 0.02);
    }
}

//! Rheology substrate: quantitative texture measurement.
//!
//! Three pieces:
//!
//! * [`attributes`] — the three instrumental texture attributes the paper
//!   uses (hardness, cohesiveness, adhesiveness) in **RU** (rheological
//!   units), with conversions from the heterogeneous units of the source
//!   literature.
//! * [`mod@table1`] / [`dishes`] — the open empirical data printed in the
//!   paper: the 13 gel settings of Table I and the Bavarois / milk-jelly
//!   records of Table II(b).
//! * [`tpa`] — a two-bite Texture Profile Analysis rheometer simulator.
//!   The paper's measurements come from physical rheometers (Fig. 2);
//!   we reproduce the instrument: per-gel mechanics calibrated against the
//!   food-science literature drive a simulated force-time curve (descend /
//!   ascend twice), and the attribute *extraction* — peak force F1, area
//!   ratio c/a, negative area b — runs numerically on the sampled curve
//!   exactly as a rheometer's software would.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod attributes;
pub mod dishes;
pub mod sweep;
pub mod table1;
pub mod tpa;

pub use attributes::{RheoUnit, TextureAttributes};
pub use dishes::{bavarois, milk_jelly, DishRecord};
pub use sweep::{hardness_crossover, sweep_gel, FirmnessClass, SweepPoint};
pub use table1::{table1, EmpiricalSetting};
pub use tpa::{GelMechanics, TpaConfig, TpaCurve};

//! Table I of the paper: empirical gel settings and measured texture from
//! six food-science studies (paper refs \[3\]–\[5\], \[15\]–\[17\]), already converted
//! to RU.
//!
//! This is open data printed in the paper, embedded verbatim. (The paper's
//! table numbers its rows 1–13 with a typo duplicating "8"; we number them
//! 1–13.)

use crate::attributes::TextureAttributes;
use serde::{Deserialize, Serialize};

/// One empirical setting: gel concentrations and measured texture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalSetting {
    /// Row id (1-based, as in the paper).
    pub id: u32,
    /// Gel concentrations as weight ratios: (gelatin, kanten, agar).
    pub gels: [f64; 3],
    /// Measured texture in RU.
    pub attributes: TextureAttributes,
}

impl EmpiricalSetting {
    /// Gelatin concentration.
    #[must_use]
    pub fn gelatin(&self) -> f64 {
        self.gels[0]
    }
    /// Kanten concentration.
    #[must_use]
    pub fn kanten(&self) -> f64 {
        self.gels[1]
    }
    /// Agar concentration.
    #[must_use]
    pub fn agar(&self) -> f64 {
        self.gels[2]
    }

    /// Which gels are present (non-zero concentration).
    #[must_use]
    pub fn present_gels(&self) -> Vec<usize> {
        self.gels
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The 13 rows of Table I.
#[must_use]
pub fn table1() -> Vec<EmpiricalSetting> {
    let rows: [(u32, [f64; 3], [f64; 3]); 13] = [
        (1, [0.018, 0.0, 0.0], [0.20, 0.60, 0.10]),
        (2, [0.020, 0.0, 0.0], [0.30, 0.59, 0.04]),
        (3, [0.025, 0.0, 0.0], [0.72, 0.17, 0.57]),
        (4, [0.030, 0.0, 0.0], [2.78, 0.31, 0.42]),
        (5, [0.030, 0.0, 0.03], [3.01, 0.35, 12.60]),
        (6, [0.0, 0.008, 0.0], [2.20, 0.12, 0.0]),
        (7, [0.0, 0.010, 0.0], [3.50, 0.10, 0.0]),
        (8, [0.0, 0.012, 0.0], [5.00, 0.80, 0.0]),
        (9, [0.0, 0.020, 0.0], [5.67, 0.03, 0.0]),
        (10, [0.0, 0.0, 0.008], [1.00, 0.48, 0.0]),
        (11, [0.0, 0.0, 0.010], [1.50, 0.33, 0.01]),
        (12, [0.0, 0.0, 0.012], [2.70, 0.28, 0.02]),
        (13, [0.0, 0.0, 0.030], [2.21, 0.20, 1.95]),
    ];
    rows.iter()
        .map(|&(id, gels, [h, c, a])| EmpiricalSetting {
            id,
            gels,
            attributes: TextureAttributes::new(h, c, a),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_with_sequential_ids() {
        let t = table1();
        assert_eq!(t.len(), 13);
        for (i, row) in t.iter().enumerate() {
            assert_eq!(row.id as usize, i + 1);
        }
    }

    #[test]
    fn row_groups_by_gel_type() {
        let t = table1();
        // Rows 1–4: pure gelatin.
        for row in &t[0..4] {
            assert!(row.gelatin() > 0.0 && row.kanten() == 0.0 && row.agar() == 0.0);
        }
        // Row 5: gelatin + agar mix.
        assert_eq!(t[4].present_gels(), vec![0, 2]);
        // Rows 6–9: pure kanten.
        for row in &t[5..9] {
            assert_eq!(row.present_gels(), vec![1]);
        }
        // Rows 10–13: pure agar.
        for row in &t[9..13] {
            assert_eq!(row.present_gels(), vec![2]);
        }
    }

    #[test]
    fn known_values_spot_check() {
        let t = table1();
        assert!((t[2].gelatin() - 0.025).abs() < 1e-12);
        assert!((t[2].attributes.hardness - 0.72).abs() < 1e-12);
        assert!((t[4].attributes.adhesiveness - 12.6).abs() < 1e-12);
        assert!((t[8].attributes.cohesiveness - 0.03).abs() < 1e-12);
    }

    #[test]
    fn hardness_increases_with_concentration_per_pure_gel() {
        let t = table1();
        // Gelatin rows 1–4.
        for w in t[0..4].windows(2) {
            assert!(w[1].attributes.hardness > w[0].attributes.hardness);
        }
        // Kanten rows 6–9.
        for w in t[5..9].windows(2) {
            assert!(w[1].attributes.hardness > w[0].attributes.hardness);
        }
        // Agar rows 10–12 (13 is the noisy high-concentration outlier).
        for w in t[9..12].windows(2) {
            assert!(w[1].attributes.hardness > w[0].attributes.hardness);
        }
    }

    #[test]
    fn kanten_has_no_adhesiveness() {
        let t = table1();
        for row in &t[5..9] {
            assert_eq!(row.attributes.adhesiveness, 0.0);
        }
    }
}

//! Table II(b): the two gel + emulsion validation dishes from the
//! food-science literature — Bavarois (Kawabata & Sawayama 1974) and milk
//! jelly (Motegi 1975) — plus the pure-gelatin reference row.

use crate::attributes::TextureAttributes;
use serde::{Deserialize, Serialize};

/// A measured dish: quantitative texture plus full concentration vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DishRecord {
    /// Dish name as in the paper.
    pub name: String,
    /// Measured texture in RU.
    pub attributes: TextureAttributes,
    /// Gel concentrations (gelatin, kanten, agar).
    pub gels: [f64; 3],
    /// Emulsion concentrations in feature order
    /// (sugar, egg albumen, egg yolk, raw cream, milk, yogurt).
    pub emulsions: [f64; 6],
}

/// Bavarois (Table II(b) row 1).
#[must_use]
pub fn bavarois() -> DishRecord {
    DishRecord {
        name: "Bavarois".into(),
        attributes: TextureAttributes::new(3.860, 0.809, 0.095),
        gels: [0.025, 0.0, 0.0],
        emulsions: [0.0, 0.0, 0.08, 0.2, 0.4, 0.0],
    }
}

/// Milk jelly (Table II(b) row 2).
#[must_use]
pub fn milk_jelly() -> DishRecord {
    DishRecord {
        name: "Milk jelly".into(),
        attributes: TextureAttributes::new(1.83, 0.27, 0.44),
        gels: [0.025, 0.0, 0.0],
        emulsions: [0.032, 0.0, 0.0, 0.0, 0.787, 0.0],
    }
}

/// The pure-gelatin reference (Table I row 3, repeated in Table II(b)).
#[must_use]
pub fn pure_gelatin_reference() -> DishRecord {
    DishRecord {
        name: "Data 3 in Table I".into(),
        attributes: TextureAttributes::new(0.72, 0.17, 0.57),
        gels: [0.025, 0.0, 0.0],
        emulsions: [0.0; 6],
    }
}

/// All Table II(b) rows in paper order.
#[must_use]
pub fn table2b() -> Vec<DishRecord> {
    vec![bavarois(), milk_jelly(), pure_gelatin_reference()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_gel_concentration_different_texture() {
        // The paper's point: identical 2.5% gelatin, very different texture
        // due to emulsions.
        let b = bavarois();
        let m = milk_jelly();
        let r = pure_gelatin_reference();
        assert_eq!(b.gels, m.gels);
        assert_eq!(b.gels, r.gels);
        assert!(b.attributes.hardness > m.attributes.hardness);
        assert!(m.attributes.hardness > r.attributes.hardness);
        assert!(b.attributes.cohesiveness > m.attributes.cohesiveness);
    }

    #[test]
    fn emulsion_profiles_match_paper() {
        let b = bavarois();
        assert_eq!(b.emulsions[2], 0.08); // egg yolk
        assert_eq!(b.emulsions[3], 0.2); // raw cream
        assert_eq!(b.emulsions[4], 0.4); // milk
        let m = milk_jelly();
        assert_eq!(m.emulsions[0], 0.032); // sugar
        assert_eq!(m.emulsions[4], 0.787); // milk
        assert!(pure_gelatin_reference().emulsions.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn table2b_order() {
        let t = table2b();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].name, "Bavarois");
        assert_eq!(t[1].name, "Milk jelly");
    }
}

//! Two-bite Texture Profile Analysis (TPA) rheometer simulator.
//!
//! A rheometer (paper Fig. 2) lowers a disc probe onto the sample and
//! raises it again, twice, recording force over time. The attributes are
//! then read off the curve: **hardness** is the first-compression peak
//! F1, **cohesiveness** the second/first compression work ratio c/a, and
//! **adhesiveness** the negative (pull-off) work b during the first
//! ascent.
//!
//! The simulator has two layers:
//!
//! 1. [`GelMechanics`] — constitutive laws per gel, calibrated against the
//!    food-science measurements of Table I: gelatin hardness follows the
//!    steep power law `H ∝ c⁵` fitted to rows 1–4; kanten and agar follow
//!    saturating laws fitted to rows 6–9 / 10–13; gelatin cohesiveness
//!    falls off sharply past ~2.25 % (the row 2→3 cliff); adhesiveness is
//!    a thresholded sigmoid per gel with a strong gelatin × agar synergy
//!    (interpenetrating-network stickiness) calibrated to row 5's 12.6 RU.
//!    Emulsion corrections (for Table II(b) dishes) are calibrated to the
//!    Bavarois and milk-jelly records. Known deliberate misfits: the
//!    paper's row 8 cohesiveness (0.80 — inconsistent with every other
//!    kanten row) and row 13 hardness (non-monotonic outlier) are not
//!    chased.
//! 2. [`TpaCurve`] — the instrument: a triangular two-cycle strain path
//!    drives a force-time series from the mechanics (elastic loading with
//!    gel-specific peak sharpness, hysteretic unloading, sinusoidal
//!    adhesive pull-off tail), and [`TpaCurve::extract`] recovers the
//!    attributes *numerically from the sampled curve* — peak detection and
//!    trapezoidal work integration, the same computation a physical
//!    rheometer's software performs.

use crate::attributes::TextureAttributes;
use serde::{Deserialize, Serialize};

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Constitutive parameters of one sample, derived from its composition.
///
/// # Examples
/// ```
/// use rheotex_rheology::GelMechanics;
///
/// // 2.5% gelatin (Table I row 3): soft, moderately sticky.
/// let soft = GelMechanics::from_gel_concentrations([0.025, 0.0, 0.0]);
/// // 2% kanten (row 9): much harder, never sticky.
/// let firm = GelMechanics::from_gel_concentrations([0.0, 0.02, 0.0]);
/// assert!(firm.hardness > soft.hardness);
/// assert!(firm.adhesiveness < 0.02);
/// let attrs = soft.predicted_attributes(); // full TPA simulation
/// assert!((attrs.hardness - soft.hardness).abs() / soft.hardness < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GelMechanics {
    /// Target first-bite peak force, RU.
    pub hardness: f64,
    /// Target second/first compression work ratio.
    pub cohesiveness: f64,
    /// Target pull-off work, RU·s.
    pub adhesiveness: f64,
    /// Loading-curve exponent: higher = sharper, more brittle peak.
    pub peak_exponent: f64,
}

impl GelMechanics {
    /// Mechanics of a pure-gel (no emulsion) sample from gel
    /// concentrations `(gelatin, kanten, agar)` as weight ratios.
    #[must_use]
    pub fn from_gel_concentrations(gels: [f64; 3]) -> Self {
        let [cg, ck, ca] = gels;

        // Hardness, per gel (calibrated to Table I, see module docs).
        let h_gel = 1.0e8 * cg.powi(5);
        let h_kan = 6.0 * (1.0 - (-(ck / 0.0118).powi(2)).exp());
        let h_aga = 2.8 * (1.0 - (-(ca / 0.0120).powi(2)).exp());
        // Mixtures: dominant network carries the load, secondary network
        // reinforces partially.
        let parts = [h_gel, h_kan, h_aga];
        let h_max = parts.iter().fold(0.0f64, |m, &v| m.max(v));
        let h_sum: f64 = parts.iter().sum();
        let hardness = h_max + 0.35 * (h_sum - h_max);

        // Cohesiveness, per gel, blended by hardness contribution.
        let coh_gel = 0.6 - 0.4 * sigmoid((cg - 0.0225) / 0.002);
        let coh_kan = 0.15 * (-(ck / 0.03)).exp();
        let coh_aga = 0.6 * (-(ca / 0.025)).exp();
        let cohesiveness = if h_sum > 1e-12 {
            (h_gel * coh_gel + h_kan * coh_kan + h_aga * coh_aga) / h_sum
        } else {
            0.0
        };

        // Adhesiveness: thresholded onset per gel; kanten is never sticky.
        // The at-zero sigmoid tail is subtracted so a gel-free sample is
        // exactly non-adhesive.
        let adh_onset = |c: f64, amp: f64, thresh: f64, width: f64| {
            (amp * (sigmoid((c - thresh) / width) - sigmoid(-thresh / width))).max(0.0)
        };
        let adh_gel = adh_onset(cg, 0.55, 0.023, 0.0015);
        let adh_aga = adh_onset(ca, 2.0, 0.02, 0.004);
        // Gelatin × agar interpenetrating-network synergy (Table I row 5).
        let synergy = if cg > 0.005 && ca > 0.005 {
            1.0 + 142.0 * cg.min(ca)
        } else {
            1.0
        };
        let adhesiveness = (adh_gel + adh_aga) * synergy;

        // Peak sharpness: kanten is brittle, gelatin ductile.
        let peak_exponent = if h_sum > 1e-12 {
            (h_gel * 1.6 + h_kan * 3.0 + h_aga * 2.4) / h_sum
        } else {
            1.6
        };

        Self {
            hardness,
            cohesiveness: cohesiveness.clamp(0.0, 0.95),
            adhesiveness,
            peak_exponent,
        }
    }

    /// Applies emulsion corrections (concentrations in feature order:
    /// sugar, egg albumen, egg yolk, raw cream, milk, yogurt).
    ///
    /// Emulsion droplets and milk solids act as active fillers: they
    /// stiffen the gel (hardness multiplier), fat/yolk networks make the
    /// second bite recover more (cohesiveness bonus), and surface fat
    /// reduces pull-off stickiness (adhesiveness damping). Coefficients
    /// calibrated to the Bavarois / milk-jelly records of Table II(b).
    #[must_use]
    pub fn with_emulsions(self, emulsions: [f64; 6]) -> Self {
        let [sugar, albumen, yolk, cream, milk, yogurt] = emulsions;
        let hardness_mul = 1.0
            + 1.3 * sugar
            + 2.0 * albumen
            + 20.0 * yolk
            + 10.0 * cream
            + 1.9 * milk
            + 1.5 * yogurt;
        let coh_bonus =
            0.19 * sugar + 0.5 * albumen + 2.4 * yolk + 2.0 * cream + 0.12 * milk + 0.1 * yogurt;
        let adh_damp = (-(0.72 * sugar
            + 1.0 * albumen
            + 10.0 * yolk
            + 4.35 * cream
            + 0.3 * milk
            + 0.5 * yogurt))
            .exp();
        Self {
            hardness: self.hardness * hardness_mul,
            cohesiveness: (self.cohesiveness + coh_bonus).clamp(0.0, 0.95),
            adhesiveness: self.adhesiveness * adh_damp,
            peak_exponent: self.peak_exponent,
        }
    }

    /// Full pipeline: gels plus emulsions.
    #[must_use]
    pub fn from_composition(gels: [f64; 3], emulsions: [f64; 6]) -> Self {
        Self::from_gel_concentrations(gels).with_emulsions(emulsions)
    }

    /// Convenience: simulate a TPA run at default instrument settings and
    /// extract the attributes from the curve.
    #[must_use]
    pub fn predicted_attributes(&self) -> TextureAttributes {
        TpaCurve::simulate(self, &TpaConfig::default()).extract()
    }
}

/// Instrument settings of a TPA run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpaConfig {
    /// Samples per stroke (one stroke = one descend or one ascend).
    pub steps_per_stroke: usize,
    /// Maximum compression strain (fraction of sample height).
    pub max_strain: f64,
    /// Duration of one stroke in seconds.
    pub stroke_seconds: f64,
}

impl Default for TpaConfig {
    fn default() -> Self {
        Self {
            steps_per_stroke: 250,
            max_strain: 0.7,
            stroke_seconds: 1.0,
        }
    }
}

/// A sampled force-time curve of a two-bite TPA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpaCurve {
    /// Sample timestamps, seconds.
    pub time: Vec<f64>,
    /// Probe force, RU (negative = pull-off).
    pub force: Vec<f64>,
    /// Instantaneous strain (for cycle detection).
    pub strain: Vec<f64>,
    /// Instrument settings used.
    pub config: TpaConfig,
}

impl TpaCurve {
    /// Simulates the four strokes (descend, ascend, descend, ascend).
    #[must_use]
    pub fn simulate(mech: &GelMechanics, config: &TpaConfig) -> Self {
        let n = config.steps_per_stroke.max(2);
        let dt = config.stroke_seconds / n as f64;
        let mut time = Vec::with_capacity(4 * n);
        let mut force = Vec::with_capacity(4 * n);
        let mut strain = Vec::with_capacity(4 * n);
        let mut t = 0.0;

        // The probe separates from the collapsed sample partway up the
        // ascent; elastic contact force exists only before separation and
        // the adhesive string-off tail only after, as on a real trace
        // (Fig. 2: the negative dip follows the positive peak, they do not
        // overlap).
        const DETACH_AT: f64 = 0.3; // ascent progress where contact is lost
                                    // sin²(π·(u−d)/(1−d)) over u ∈ [d, 1] has mean ½, so the tail's
                                    // area is peak·(1−d)·stroke/2.
        let adhesive_peak = 2.0 * mech.adhesiveness / ((1.0 - DETACH_AT) * config.stroke_seconds);

        for stroke in 0..4u8 {
            let descending = stroke % 2 == 0;
            // First bite at full structure; second bite on the partially
            // ruptured sample — compression force scales by cohesiveness,
            // which is what makes the work ratio c/a equal it.
            let peak = if stroke < 2 {
                mech.hardness
            } else {
                mech.hardness * mech.cohesiveness
            };
            for i in 0..n {
                let u = (i as f64 + 0.5) / n as f64; // stroke progress
                let s = if descending {
                    u * config.max_strain
                } else {
                    (1.0 - u) * config.max_strain
                };
                let rel = s / config.max_strain;
                let mut f = if descending {
                    peak * rel.powf(mech.peak_exponent)
                } else if u <= DETACH_AT {
                    // Hysteretic unloading while still in contact: force
                    // releases much faster than it built up.
                    peak * rel.powf(mech.peak_exponent * 3.0)
                } else {
                    0.0
                };
                // Adhesive pull-off on the first ascent only, after
                // separation (the paper's area b).
                if stroke == 1 && u > DETACH_AT {
                    let v = (u - DETACH_AT) / (1.0 - DETACH_AT);
                    f -= adhesive_peak * (std::f64::consts::PI * v).sin().powi(2);
                }
                time.push(t);
                force.push(f);
                strain.push(s);
                t += dt;
            }
        }
        Self {
            time,
            force,
            strain,
            config: *config,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the curve is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Extracts the TPA attributes numerically from the sampled curve:
    /// peak positive force of bite 1 (hardness), positive-work ratio of
    /// bite 2 to bite 1 (cohesiveness), and integrated negative force
    /// (adhesiveness). Integration is rectangle-rule over the uniform
    /// sampling grid.
    #[must_use]
    pub fn extract(&self) -> TextureAttributes {
        let n = self.len();
        if n == 0 {
            return TextureAttributes::new(0.0, 0.0, 0.0);
        }
        let half = n / 2;
        let dt = if n > 1 {
            self.time[1] - self.time[0]
        } else {
            0.0
        };
        let mut f1_peak = 0.0f64;
        let mut work_a = 0.0; // positive work, bite 1
        let mut work_c = 0.0; // positive work, bite 2
        let mut neg_b = 0.0; // negative area, bite 1
        for i in 0..n {
            let f = self.force[i];
            if i < half {
                f1_peak = f1_peak.max(f);
                if f > 0.0 {
                    work_a += f * dt;
                } else {
                    neg_b += -f * dt;
                }
            } else if f > 0.0 {
                work_c += f * dt;
            }
        }
        let cohesiveness = if work_a > 1e-12 { work_c / work_a } else { 0.0 };
        TextureAttributes::new(f1_peak, cohesiveness, neg_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::table1;

    #[test]
    fn extraction_recovers_mechanics_targets() {
        let mech = GelMechanics {
            hardness: 2.5,
            cohesiveness: 0.4,
            adhesiveness: 0.8,
            peak_exponent: 2.0,
        };
        let attrs = mech.predicted_attributes();
        assert!((attrs.hardness - 2.5).abs() / 2.5 < 0.02, "{attrs:?}");
        assert!((attrs.cohesiveness - 0.4).abs() < 0.03, "{attrs:?}");
        assert!((attrs.adhesiveness - 0.8).abs() / 0.8 < 0.05, "{attrs:?}");
    }

    #[test]
    fn zero_gel_sample_is_inert() {
        let mech = GelMechanics::from_gel_concentrations([0.0, 0.0, 0.0]);
        let attrs = mech.predicted_attributes();
        assert!(attrs.hardness < 1e-6);
        assert!(attrs.adhesiveness < 1e-3);
    }

    #[test]
    fn hardness_monotone_in_concentration_per_gel() {
        for gel in 0..3 {
            let mut prev = 0.0;
            for step in 1..=10 {
                let c = step as f64 * 0.004;
                let mut gels = [0.0; 3];
                gels[gel] = c;
                let h = GelMechanics::from_gel_concentrations(gels).hardness;
                assert!(h >= prev, "gel {gel} at c={c}: {h} < {prev}");
                prev = h;
            }
        }
    }

    #[test]
    fn table1_hardness_rank_correlation() {
        // Simulated hardness must preserve the ordering of the paper's
        // measurements (Spearman ρ) well above chance.
        let rows = table1();
        let sim: Vec<f64> = rows
            .iter()
            .map(|r| GelMechanics::from_gel_concentrations(r.gels).hardness)
            .collect();
        let paper: Vec<f64> = rows.iter().map(|r| r.attributes.hardness).collect();
        let rho = spearman(&sim, &paper);
        assert!(rho > 0.75, "Spearman rho = {rho:.3}");
    }

    #[test]
    fn table1_magnitudes_within_band() {
        // Beyond ranks: per-row simulated hardness within a generous
        // multiplicative band of the measurement (heterogeneous source
        // studies; row 13 is the paper's own outlier).
        for r in table1() {
            if r.id == 13 {
                continue;
            }
            let sim = GelMechanics::from_gel_concentrations(r.gels).hardness;
            let paper = r.attributes.hardness;
            let ratio = sim.max(1e-6) / paper.max(1e-6);
            assert!(
                (0.3..=3.5).contains(&ratio),
                "row {}: sim {sim:.2} vs paper {paper:.2}",
                r.id
            );
        }
    }

    #[test]
    fn kanten_is_never_adhesive() {
        for step in 1..=10 {
            let c = step as f64 * 0.003;
            let m = GelMechanics::from_gel_concentrations([0.0, c, 0.0]);
            assert!(
                m.adhesiveness < 0.02,
                "kanten c={c}: adh {}",
                m.adhesiveness
            );
        }
    }

    #[test]
    fn gelatin_agar_mix_is_very_sticky() {
        // Table I row 5: the mix's adhesiveness dwarfs both pure gels.
        let mix = GelMechanics::from_gel_concentrations([0.03, 0.0, 0.03]);
        let pure_g = GelMechanics::from_gel_concentrations([0.03, 0.0, 0.0]);
        let pure_a = GelMechanics::from_gel_concentrations([0.0, 0.0, 0.03]);
        assert!(mix.adhesiveness > 4.0 * (pure_g.adhesiveness + pure_a.adhesiveness));
        assert!(mix.adhesiveness > 8.0, "mix adh {}", mix.adhesiveness);
    }

    #[test]
    fn dilute_gelatin_more_cohesive_than_concentrated() {
        let dilute = GelMechanics::from_gel_concentrations([0.018, 0.0, 0.0]);
        let dense = GelMechanics::from_gel_concentrations([0.03, 0.0, 0.0]);
        assert!(dilute.cohesiveness > dense.cohesiveness + 0.2);
    }

    #[test]
    fn emulsions_reproduce_bavarois_and_milk_jelly_contrast() {
        use crate::dishes::{bavarois, milk_jelly};
        for dish in [bavarois(), milk_jelly()] {
            let sim =
                GelMechanics::from_composition(dish.gels, dish.emulsions).predicted_attributes();
            let gap = sim.relative_gap(&dish.attributes, 0.2);
            assert!(
                gap < 0.45,
                "{}: sim {sim:?} vs paper {:?}",
                dish.name,
                dish.attributes
            );
        }
        // The defining contrast: Bavarois harder and more cohesive.
        let b = GelMechanics::from_composition(bavarois().gels, bavarois().emulsions);
        let m = GelMechanics::from_composition(milk_jelly().gels, milk_jelly().emulsions);
        assert!(b.hardness > m.hardness);
        assert!(b.cohesiveness > m.cohesiveness + 0.3);
        // And both harder than the pure gel.
        let pure = GelMechanics::from_gel_concentrations([0.025, 0.0, 0.0]);
        assert!(m.hardness > pure.hardness);
    }

    #[test]
    fn curve_shape_matches_figure2() {
        // Fig. 2: positive peak on each bite, negative dip after bite 1,
        // second peak smaller than the first.
        let mech = GelMechanics::from_gel_concentrations([0.025, 0.0, 0.0]);
        let curve = TpaCurve::simulate(&mech, &TpaConfig::default());
        let n = curve.len();
        assert_eq!(n, 4 * 250);
        let quarter = n / 4;
        let peak1 = curve.force[..quarter]
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let min_mid = curve.force[quarter..2 * quarter]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let peak2 = curve.force[2 * quarter..3 * quarter]
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(peak1 > 0.0);
        assert!(min_mid < 0.0, "adhesive dip missing: {min_mid}");
        assert!(peak2 < peak1);
        assert!(peak2 > 0.0);
        // Strain path returns to zero.
        assert!(curve.strain[n - 1] < 0.01);
    }

    #[test]
    fn empty_curve_extracts_zeros() {
        let c = TpaCurve {
            time: vec![],
            force: vec![],
            strain: vec![],
            config: TpaConfig::default(),
        };
        let a = c.extract();
        assert_eq!(a.hardness, 0.0);
        assert_eq!(a.cohesiveness, 0.0);
    }

    fn spearman(a: &[f64], b: &[f64]) -> f64 {
        fn ranks(xs: &[f64]) -> Vec<f64> {
            let mut idx: Vec<usize> = (0..xs.len()).collect();
            idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
            let mut r = vec![0.0; xs.len()];
            for (rank, &i) in idx.iter().enumerate() {
                r[i] = rank as f64;
            }
            r
        }
        let ra = ranks(a);
        let rb = ranks(b);
        let n = ra.len() as f64;
        let mean = (n - 1.0) / 2.0;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for i in 0..ra.len() {
            let x = ra[i] - mean;
            let y = rb[i] - mean;
            num += x * y;
            da += x * x;
            db += y * y;
        }
        num / (da.sqrt() * db.sqrt())
    }
}

//! Concentration sweeps and derived analyses over the TPA model.
//!
//! These are the "master curve" utilities an experimentalist builds from
//! an instrument: attribute-vs-concentration tables for one gel,
//! crossover finding between two gels (at what concentration does kanten
//! overtake gelatin in hardness?), and a coarse perceptual firmness
//! classification of a sample.

use crate::attributes::TextureAttributes;
use crate::tpa::GelMechanics;
use serde::{Deserialize, Serialize};

/// One sampled point of a concentration sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Concentration (weight ratio).
    pub concentration: f64,
    /// Predicted attributes at this concentration.
    pub attributes: TextureAttributes,
}

/// Sweeps one gel (by index: 0 gelatin, 1 kanten, 2 agar) over `steps`
/// evenly spaced concentrations in `[lo, hi]`.
///
/// # Panics
/// Panics if `gel > 2`, `steps < 2`, or the range is empty/invalid.
#[must_use]
pub fn sweep_gel(gel: usize, lo: f64, hi: f64, steps: usize) -> Vec<SweepPoint> {
    assert!(gel < 3, "gel index {gel} out of range");
    assert!(steps >= 2, "need at least 2 steps");
    assert!(lo >= 0.0 && hi > lo, "invalid range [{lo}, {hi}]");
    (0..steps)
        .map(|i| {
            let c = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
            let mut gels = [0.0; 3];
            gels[gel] = c;
            SweepPoint {
                concentration: c,
                attributes: GelMechanics::from_gel_concentrations(gels).predicted_attributes(),
            }
        })
        .collect()
}

/// Finds the concentration at which gel `a` and gel `b` have equal
/// hardness, by bisection on `hardness_a(c) − hardness_b(c)` over
/// `[lo, hi]`. Returns `None` when the difference does not change sign on
/// the interval.
#[must_use]
pub fn hardness_crossover(a: usize, b: usize, lo: f64, hi: f64) -> Option<f64> {
    assert!(a < 3 && b < 3, "gel indices out of range");
    let diff = |c: f64| {
        let mut ga = [0.0; 3];
        ga[a] = c;
        let mut gb = [0.0; 3];
        gb[b] = c;
        GelMechanics::from_gel_concentrations(ga).hardness
            - GelMechanics::from_gel_concentrations(gb).hardness
    };
    let (mut x0, mut x1) = (lo, hi);
    let (mut f0, f1) = (diff(x0), diff(x1));
    if f0 == 0.0 && f1 == 0.0 {
        // Identically equal (e.g. a gel against itself): nothing crosses.
        return None;
    }
    if f0 == 0.0 {
        return Some(x0);
    }
    if f1 == 0.0 {
        return Some(x1);
    }
    if f0.signum() == f1.signum() {
        return None;
    }
    for _ in 0..80 {
        let mid = 0.5 * (x0 + x1);
        let fm = diff(mid);
        if fm == 0.0 || (x1 - x0) < 1e-9 {
            return Some(mid);
        }
        if fm.signum() == f0.signum() {
            x0 = mid;
            f0 = fm;
        } else {
            x1 = mid;
        }
    }
    Some(0.5 * (x0 + x1))
}

/// Coarse perceptual firmness bands over the hardness attribute (RU).
/// Thresholds follow the Table I spread: gelatin desserts live below 1,
/// firm kanten sweets above 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirmnessClass {
    /// Barely self-supporting (< 0.3 RU).
    VerySoft,
    /// Spoon-soft desserts (0.3–1 RU).
    Soft,
    /// Sliceable gels (1–3 RU).
    Medium,
    /// Firm confections (≥ 3 RU).
    Firm,
}

impl FirmnessClass {
    /// Classifies a hardness reading.
    #[must_use]
    pub fn from_hardness(h: f64) -> Self {
        if h < 0.3 {
            FirmnessClass::VerySoft
        } else if h < 1.0 {
            FirmnessClass::Soft
        } else if h < 3.0 {
            FirmnessClass::Medium
        } else {
            FirmnessClass::Firm
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FirmnessClass::VerySoft => "very soft",
            FirmnessClass::Soft => "soft",
            FirmnessClass::Medium => "medium",
            FirmnessClass::Firm => "firm",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_in_hardness() {
        let points = sweep_gel(0, 0.005, 0.04, 12);
        assert_eq!(points.len(), 12);
        for w in points.windows(2) {
            assert!(w[1].attributes.hardness >= w[0].attributes.hardness);
            assert!(w[1].concentration > w[0].concentration);
        }
        assert!((points[0].concentration - 0.005).abs() < 1e-12);
        assert!((points[11].concentration - 0.04).abs() < 1e-12);
    }

    #[test]
    fn kanten_gelatin_crossover_exists_and_flips() {
        // At low concentration kanten is far harder than gelatin (Table I:
        // 0.8% kanten ≈ 2.2 RU vs 2% gelatin ≈ 0.3 RU); gelatin's c⁵ law
        // overtakes somewhere below 4%.
        let c = hardness_crossover(0, 1, 0.005, 0.06).expect("crossover");
        assert!(c > 0.01 && c < 0.06, "crossover at {c}");
        let h = |gel: usize, conc: f64| {
            let mut g = [0.0; 3];
            g[gel] = conc;
            GelMechanics::from_gel_concentrations(g).hardness
        };
        // Kanten harder below, gelatin harder above.
        assert!(h(1, c * 0.7) > h(0, c * 0.7));
        assert!(h(0, c * 1.3) > h(1, c * 1.3));
        // At the crossover itself the difference is tiny.
        assert!((h(0, c) - h(1, c)).abs() < 1e-3 * h(0, c).max(1.0));
    }

    #[test]
    fn no_crossover_returns_none() {
        // Gelatin vs itself never changes sign.
        assert!(hardness_crossover(0, 0, 0.005, 0.05).is_none());
    }

    #[test]
    fn firmness_classification_bands() {
        assert_eq!(FirmnessClass::from_hardness(0.1), FirmnessClass::VerySoft);
        assert_eq!(FirmnessClass::from_hardness(0.5), FirmnessClass::Soft);
        assert_eq!(FirmnessClass::from_hardness(2.0), FirmnessClass::Medium);
        assert_eq!(FirmnessClass::from_hardness(5.0), FirmnessClass::Firm);
        // Table I anchors: 1.8% gelatin is very soft, 2% kanten is firm.
        let soft = GelMechanics::from_gel_concentrations([0.018, 0.0, 0.0]);
        assert_eq!(
            FirmnessClass::from_hardness(soft.hardness),
            FirmnessClass::VerySoft
        );
        let firm = GelMechanics::from_gel_concentrations([0.0, 0.02, 0.0]);
        assert_eq!(
            FirmnessClass::from_hardness(firm.hardness),
            FirmnessClass::Firm
        );
    }

    #[test]
    #[should_panic(expected = "gel index")]
    fn sweep_rejects_bad_gel() {
        let _ = sweep_gel(3, 0.01, 0.02, 3);
    }
}

//! Dense row-major `f64` matrices.
//!
//! Sized and tuned for the small systems of the joint topic model (gel
//! covariances are 3×3, emulsion covariances 6×6), so all algorithms are
//! straightforward O(n³) textbook implementations without blocking — at
//! these dimensions that is both the simplest and the fastest choice.

use crate::vector::Vector;
use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_rows_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if rows have unequal lengths
    /// and [`LinalgError::Empty`] if there are no rows.
    pub fn from_nested(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        if r == 0 {
            return Err(LinalgError::Empty { op: "from_nested" });
        }
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_nested",
                    lhs: (r, c),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Scaled identity `alpha * I` of size `n`.
    #[must_use]
    pub fn scaled_identity(n: usize, alpha: f64) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = alpha;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != ncols`.
    pub fn matvec(&self, v: &Vector) -> Result<Vector> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = 0.0;
            for (a, b) in self.row(i).iter().zip(v.iter()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Quadratic form `v^T * self * v`.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::ShapeMismatch`].
    pub fn quadratic_form(&self, v: &Vector) -> Result<f64> {
        self.require_square()?;
        let mv = self.matvec(v)?;
        v.dot(&mv)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.check_same_shape(other, "add")?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.check_same_shape(other, "sub")?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// `self += alpha * other` in place.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Self) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self` scaled by `alpha`.
    #[must_use]
    pub fn scale(&self, alpha: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }

    /// Outer product `u * v^T`.
    #[must_use]
    pub fn outer(u: &Vector, v: &Vector) -> Self {
        let mut m = Self::zeros(u.len(), v.len());
        for i in 0..u.len() {
            let ui = u[i];
            for j in 0..v.len() {
                m[(i, j)] = ui * v[j];
            }
        }
        m
    }

    /// Adds `alpha * v v^T` to `self` in place (symmetric rank-1 update).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`].
    pub fn rank1_update(&mut self, alpha: f64, v: &Vector) -> Result<()> {
        self.require_square()?;
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "rank1_update",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        for i in 0..self.rows {
            let vi = alpha * v[i];
            for j in 0..self.cols {
                self[(i, j)] += vi * v[j];
            }
        }
        Ok(())
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn trace(&self) -> Result<f64> {
        self.require_square()?;
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Diagonal as a vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn diag(&self) -> Result<Vector> {
        self.require_square()?;
        Ok((0..self.rows).map(|i| self[(i, i)]).collect())
    }

    /// Maximum absolute deviation from symmetry, `max |A - A^T|`.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn asymmetry(&self) -> Result<f64> {
        self.require_square()?;
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Ok(worst)
    }

    /// Replaces `self` with `(self + self^T) / 2`, forcing exact symmetry.
    /// Used after accumulating scatter matrices to kill rounding drift.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn symmetrize(&mut self) -> Result<()> {
        self.require_square()?;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
        Ok(())
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    pub(crate) fn require_square(&self) -> Result<()> {
        if self.is_square() {
            Ok(())
        } else {
            Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            })
        }
    }

    fn check_same_shape(&self, other: &Self, op: &'static str) -> Result<()> {
        if self.shape() == other.shape() {
            Ok(())
        } else {
            Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            })
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m2(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_rows_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_quadratic_form() {
        let a = m2(2.0, 0.0, 0.0, 3.0);
        let v = Vector::new(vec![1.0, 2.0]);
        let av = a.matvec(&v).unwrap();
        assert_eq!(av.as_slice(), &[2.0, 6.0]);
        assert!(approx_eq(a.quadratic_form(&v).unwrap(), 14.0, 1e-12));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn outer_and_rank1() {
        let u = Vector::new(vec![1.0, 2.0]);
        let v = Vector::new(vec![3.0, 4.0]);
        let o = Matrix::outer(&u, &v);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 6.0, 8.0]);

        let mut m = Matrix::identity(2);
        m.rank1_update(2.0, &u).unwrap();
        assert_eq!(m.as_slice(), &[3.0, 4.0, 4.0, 9.0]);
    }

    #[test]
    fn trace_diag_symmetry() {
        let a = m2(1.0, 2.0, 2.0, 5.0);
        assert!(approx_eq(a.trace().unwrap(), 6.0, 1e-12));
        assert_eq!(a.diag().unwrap().as_slice(), &[1.0, 5.0]);
        assert_eq!(a.asymmetry().unwrap(), 0.0);

        let mut b = m2(1.0, 2.0, 4.0, 5.0);
        assert!(b.asymmetry().unwrap() > 0.0);
        b.symmetrize().unwrap();
        assert_eq!(b.asymmetry().unwrap(), 0.0);
        assert_eq!(b[(0, 1)], 3.0);
    }

    #[test]
    fn from_nested_validates() {
        assert!(Matrix::from_nested(&[&[1.0, 2.0], &[3.0]]).is_err());
        assert!(Matrix::from_nested(&[]).is_err());
        let m = Matrix::from_nested(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn square_checks() {
        let rect = Matrix::zeros(2, 3);
        assert!(rect.trace().is_err());
        assert!(rect.diag().is_err());
        assert!(rect.clone().symmetrize().is_err());
    }

    #[test]
    fn from_diag_scaled_identity() {
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d.as_slice(), &[2.0, 0.0, 0.0, 3.0]);
        let s = Matrix::scaled_identity(2, 7.0);
        assert_eq!(s.as_slice(), &[7.0, 0.0, 0.0, 7.0]);
    }
}

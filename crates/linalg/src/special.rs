//! Special functions: log-gamma, digamma, log-beta, and the multivariate
//! log-gamma function.
//!
//! These appear in every collapsed-Gibbs probability and in the Wishart /
//! Student-t normalizing constants. Implementations follow the standard
//! Lanczos (log-gamma) and asymptotic-series (digamma) forms and are
//! accurate to ~1e-12 over the ranges the models use (arguments ≥ 1e-6).

/// Lanczos coefficients (g = 7, n = 9), the classic Numerical-Recipes set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_81,
    676.520_368_121_885_1,
    -1_259.139_216_722_4,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_72,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_312e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Accurate to about 13 significant digits via the Lanczos approximation
/// with reflection for `x < 0.5`.
///
/// # Panics
/// Debug-asserts that `x` is finite; returns `f64::INFINITY` for `x <= 0`
/// at poles.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x.is_finite(), "ln_gamma of non-finite {x}");
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx)
        let sin_pix = (std::f64::consts::PI * x).sin();
        if sin_pix == 0.0 {
            return f64::INFINITY; // pole at non-positive integers
        }
        return std::f64::consts::PI.ln() - sin_pix.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence `ψ(x) = ψ(x+1) - 1/x` to push the argument above 6,
/// then the asymptotic series.
#[must_use]
pub fn digamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma domain: got {x}");
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion:
    // ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶) + 1/(240x⁸)
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// Log of the beta function, `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b)`.
#[must_use]
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Multivariate log-gamma function `ln Γ_d(x)`:
/// `(d(d−1)/4) ln π + Σ_{j=1..d} ln Γ(x + (1−j)/2)`.
///
/// Appears in the Wishart normalizer and the collapsed Student-t marginal.
#[must_use]
pub fn ln_multigamma(d: usize, x: f64) -> f64 {
    let d_f = d as f64;
    let mut acc = d_f * (d_f - 1.0) / 4.0 * std::f64::consts::PI.ln();
    for j in 1..=d {
        acc += ln_gamma(x + (1.0 - j as f64) / 2.0);
    }
    acc
}

/// `log(exp(a) + exp(b))` computed without overflow.
#[must_use]
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `log Σ exp(xs)` computed without overflow; `-inf` for empty input.
#[must_use]
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0_f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            assert!(approx_eq(ln_gamma((n + 1) as f64), f.ln(), 1e-11), "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!(approx_eq(
            ln_gamma(0.5),
            0.5 * std::f64::consts::PI.ln(),
            1e-11
        ));
        // Γ(3/2) = sqrt(π)/2
        assert!(approx_eq(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-11
        ));
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling check at x = 1000 against known value.
        // ln Γ(1000) = 5905.220423209181...
        assert!(approx_eq(ln_gamma(1000.0), 5905.220423209181, 1e-9));
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        const EULER: f64 = 0.577_215_664_901_532_9;
        assert!(approx_eq(digamma(1.0), -EULER, 1e-10));
        // ψ(2) = 1 - γ
        assert!(approx_eq(digamma(2.0), 1.0 - EULER, 1e-10));
        // ψ(1/2) = -γ - 2 ln 2
        assert!(approx_eq(
            digamma(0.5),
            -EULER - 2.0 * std::f64::consts::LN_2,
            1e-10
        ));
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.3, 1.7, 5.0, 42.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!(approx_eq(digamma(x), numeric, 1e-5), "x={x}");
        }
    }

    #[test]
    fn ln_beta_symmetry_and_value() {
        assert!(approx_eq(ln_beta(2.0, 3.0), ln_beta(3.0, 2.0), 1e-12));
        // B(2,3) = 1/12
        assert!(approx_eq(ln_beta(2.0, 3.0), (1.0_f64 / 12.0).ln(), 1e-11));
    }

    #[test]
    fn multigamma_reduces_to_gamma_for_d1() {
        for &x in &[0.7, 2.0, 9.5] {
            assert!(approx_eq(ln_multigamma(1, x), ln_gamma(x), 1e-12));
        }
    }

    #[test]
    fn multigamma_d2_recurrence() {
        // Γ_2(x) = sqrt(π) Γ(x) Γ(x - 1/2)
        let x = 3.2;
        let expect = 0.5 * std::f64::consts::PI.ln() + ln_gamma(x) + ln_gamma(x - 0.5);
        assert!(approx_eq(ln_multigamma(2, x), expect, 1e-11));
    }

    #[test]
    fn log_sum_exp_stability() {
        let xs = [1000.0, 1000.0];
        assert!(approx_eq(
            log_sum_exp(&xs),
            1000.0 + std::f64::consts::LN_2,
            1e-12
        ));
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!(approx_eq(
            log_add_exp(0.0, 0.0),
            std::f64::consts::LN_2,
            1e-12
        ));
        assert_eq!(log_add_exp(f64::NEG_INFINITY, 3.0), 3.0);
    }
}

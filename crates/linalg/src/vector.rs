//! Dense `f64` vectors.
//!
//! [`Vector`] is a thin newtype over `Vec<f64>` with the arithmetic the
//! topic model needs: dot products, axpy updates, norms, and element-wise
//! transforms. Operations that combine two vectors check lengths and return
//! [`LinalgError::ShapeMismatch`] rather than panicking, because mismatches
//! in model code are data bugs we want surfaced as errors.

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense vector of `f64`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a vector from raw data.
    #[must_use]
    pub fn new(data: Vec<f64>) -> Self {
        Self(data)
    }

    /// Creates a zero vector of length `n`.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self(vec![0.0; n])
    }

    /// Creates a vector of length `n` filled with `value`.
    #[must_use]
    pub fn full(n: usize, value: f64) -> Self {
        Self(vec![value; n])
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Immutable view of the underlying slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the underlying `Vec`.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.0
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }

    /// Dot product `self · other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn dot(&self, other: &Self) -> Result<f64> {
        self.check_same_len(other, "dot")?;
        Ok(self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum())
    }

    /// `self += alpha * other` (the BLAS `axpy` update).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Self) -> Result<()> {
        self.check_same_len(other, "axpy")?;
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.check_same_len(other, "add")?;
        Ok(Self(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        ))
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.check_same_len(other, "sub")?;
        Ok(Self(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        ))
    }

    /// Returns `self` scaled by `alpha`.
    #[must_use]
    pub fn scale(&self, alpha: f64) -> Self {
        Self(self.0.iter().map(|a| a * alpha).collect())
    }

    /// Scales in place by `alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        for a in &mut self.0 {
            *a *= alpha;
        }
    }

    /// Sum of elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Euclidean (L2) norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    #[must_use]
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|a| a.abs()).sum()
    }

    /// Maximum absolute element, or 0 for an empty vector.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
    }

    /// Applies `f` element-wise, returning a new vector.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self(self.0.iter().map(|&a| f(a)).collect())
    }

    /// Index of the maximum element. Ties break to the first occurrence.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] for an empty vector.
    pub fn argmax(&self) -> Result<usize> {
        if self.0.is_empty() {
            return Err(LinalgError::Empty { op: "argmax" });
        }
        let mut best = 0;
        for (i, &v) in self.0.iter().enumerate() {
            if v > self.0[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Normalizes the vector to sum to 1 (probability simplex projection for
    /// non-negative inputs).
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidParameter`] if the sum is not positive
    /// and finite.
    pub fn normalized(&self) -> Result<Self> {
        let s = self.sum();
        if !(s.is_finite() && s > 0.0) {
            return Err(LinalgError::InvalidParameter {
                what: format!("cannot normalize vector with sum {s}"),
            });
        }
        Ok(self.scale(1.0 / s))
    }

    /// Cosine similarity with `other`, in `[-1, 1]`. Returns 0 when either
    /// vector has zero norm.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
    pub fn cosine(&self, other: &Self) -> Result<f64> {
        let d = self.dot(other)?;
        let n = self.norm() * other.norm();
        if n == 0.0 {
            Ok(0.0)
        } else {
            Ok((d / n).clamp(-1.0, 1.0))
        }
    }

    fn check_same_len(&self, other: &Self, op: &'static str) -> Result<()> {
        if self.len() == other.len() {
            Ok(())
        } else {
            Err(LinalgError::ShapeMismatch {
                op,
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            })
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Self(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Self(v.to_vec())
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_product() {
        let a = Vector::new(vec![1.0, 2.0, 3.0]);
        let b = Vector::new(vec![4.0, -5.0, 6.0]);
        assert!(approx_eq(a.dot(&b).unwrap(), 12.0, 1e-12));
    }

    #[test]
    fn dot_shape_mismatch() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::ShapeMismatch { op: "dot", .. })
        ));
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::new(vec![1.0, 1.0]);
        let b = Vector::new(vec![2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn norms() {
        let v = Vector::new(vec![3.0, -4.0]);
        assert!(approx_eq(v.norm(), 5.0, 1e-12));
        assert!(approx_eq(v.norm_l1(), 7.0, 1e-12));
        assert!(approx_eq(v.norm_inf(), 4.0, 1e-12));
    }

    #[test]
    fn argmax_ties_break_first() {
        let v = Vector::new(vec![1.0, 3.0, 3.0, 2.0]);
        assert_eq!(v.argmax().unwrap(), 1);
        assert!(matches!(
            Vector::zeros(0).argmax(),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn normalized_sums_to_one() {
        let v = Vector::new(vec![2.0, 6.0]);
        let p = v.normalized().unwrap();
        assert!(approx_eq(p.sum(), 1.0, 1e-12));
        assert!(approx_eq(p[0], 0.25, 1e-12));
    }

    #[test]
    fn normalized_rejects_zero_sum() {
        assert!(Vector::zeros(3).normalized().is_err());
    }

    #[test]
    fn cosine_bounds_and_zero_norm() {
        let a = Vector::new(vec![1.0, 0.0]);
        let b = Vector::new(vec![1.0, 0.0]);
        assert!(approx_eq(a.cosine(&b).unwrap(), 1.0, 1e-12));
        let z = Vector::zeros(2);
        assert_eq!(a.cosine(&z).unwrap(), 0.0);
    }

    #[test]
    fn map_and_scale() {
        let v = Vector::new(vec![1.0, 4.0]);
        assert_eq!(v.map(f64::sqrt).as_slice(), &[1.0, 2.0]);
        assert_eq!(v.scale(2.0).as_slice(), &[2.0, 8.0]);
    }
}

//! Error type shared by all numerical routines in this crate.

use std::fmt;

/// Errors produced by linear-algebra and sampling routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operands have incompatible shapes, e.g. multiplying a `3×2` by a `4×4`.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix expected to be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed: the matrix is not (numerically)
    /// symmetric positive definite. Carries the pivot index where the
    /// factorization broke down.
    NotPositiveDefinite {
        /// Index of the leading minor that is not positive.
        pivot: usize,
    },
    /// LU factorization hit an (effectively) zero pivot: the matrix is
    /// singular to working precision.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// A parameter was outside its mathematical domain (e.g. a Wishart with
    /// fewer degrees of freedom than dimensions, a Dirichlet with a
    /// non-positive concentration).
    InvalidParameter {
        /// What was wrong.
        what: String,
    },
    /// An empty input where at least one element was required.
    Empty {
        /// The operation that required non-empty input.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Self::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            Self::NotPositiveDefinite { pivot } => write!(
                f,
                "matrix is not positive definite (failure at pivot {pivot})"
            ),
            Self::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            Self::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            Self::Empty { op } => write!(f, "empty input to {op}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (3, 2),
            rhs: (4, 4),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("3x2"));
        assert!(s.contains("4x4"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::Singular { pivot: 1 });
        assert!(e.to_string().contains("singular"));
    }
}

//! Small dense linear algebra and probability toolkit for `rheotex`.
//!
//! The joint topic model of the paper works with low-dimensional Gaussian
//! components (3-dimensional gel concentration vectors, 6-dimensional
//! emulsion concentration vectors), Dirichlet-multinomial word components,
//! and Normal-Wishart conjugate priors. This crate provides exactly the
//! numerical substrate those require, implemented from scratch:
//!
//! * [`Matrix`] / [`Vector`] — dense row-major matrices and vectors with the
//!   usual arithmetic, sized for the D ≤ 16 regime the model lives in.
//! * [`Cholesky`] and [`Lu`] — factorizations with solve / inverse /
//!   (log-)determinant, the workhorses of every Gaussian density evaluation.
//! * [`special`] — log-gamma, digamma, and the multivariate log-gamma
//!   function needed by Wishart and Student-t normalizing constants.
//! * [`dist`] — samplers (gamma, chi-square, Dirichlet, categorical,
//!   multivariate normal, Wishart via the Bartlett decomposition) and
//!   densities (multivariate normal and multivariate Student-t), plus the
//!   [`dist::NormalWishart`] conjugate prior with closed-form posterior
//!   updates used by Gibbs sweeps.
//! * [`kl`] — Kullback-Leibler divergences (Gaussian/Gaussian, point/Gaussian
//!   and discrete) used for the topic ↔ rheology linkage.
//! * [`moments`] — numerically stable running mean / covariance
//!   accumulators (Welford) used to maintain per-topic sufficient statistics.
//!
//! Everything is deterministic given an RNG seed; the crate takes `rand::Rng`
//! generically so callers can drive it with `rand_chacha::ChaCha8Rng` for
//! reproducible experiments.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cholesky;
pub mod dist;
pub mod error;
pub mod kl;
pub mod lu;
pub mod matrix;
pub mod moments;
pub mod special;
pub mod vector;

pub use cholesky::{Cholesky, Jitter};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use vector::Vector;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Relative tolerance used by approximate comparisons in tests and
/// convergence checks. Chosen loose enough for accumulated f64 rounding over
/// the small (D ≤ 16) systems this crate targets.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Returns `true` if `a` and `b` are within `tol` of each other, relative to
/// the larger magnitude (absolute near zero).
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_near_zero() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.001e12, 1e-9));
    }
}

//! Numerically stable running moments.
//!
//! [`RunningMoments`] (scalar, Welford) backs convergence diagnostics of
//! the Gibbs chains; [`RunningVectorMoments`] summarizes posterior samples
//! of topic means collected across sweeps.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// Welford accumulator for scalar mean and variance.
#[derive(Debug, Clone, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Running mean and covariance of vector observations (Welford-style).
#[derive(Debug, Clone)]
pub struct RunningVectorMoments {
    n: u64,
    mean: Vector,
    /// Sum of outer products of deviations, `Σ (x−μ_t)(x−μ_{t-1})ᵀ`.
    m2: Matrix,
}

impl RunningVectorMoments {
    /// Empty accumulator for `dim`-dimensional observations.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            n: 0,
            mean: Vector::zeros(dim),
            m2: Matrix::zeros(dim, dim),
        }
    }

    /// Dimension of the observations.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Adds an observation.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] for wrong dimension.
    pub fn add(&mut self, x: &Vector) -> Result<()> {
        if x.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "running_vector_add",
                lhs: (self.dim(), 1),
                rhs: (x.len(), 1),
            });
        }
        self.n += 1;
        let delta_pre = x.sub(&self.mean)?;
        self.mean.axpy(1.0 / self.n as f64, &delta_pre)?;
        let delta_post = x.sub(&self.mean)?;
        // m2 += delta_pre * delta_post^T (made symmetric below on read)
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                self.m2[(i, j)] += delta_pre[i] * delta_post[j];
            }
        }
        Ok(())
    }

    /// Current mean.
    #[must_use]
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Unbiased sample covariance (zero matrix with fewer than two
    /// observations).
    #[must_use]
    pub fn covariance(&self) -> Matrix {
        if self.n < 2 {
            return Matrix::zeros(self.dim(), self.dim());
        }
        let mut cov = self.m2.scale(1.0 / (self.n - 1) as f64);
        cov.symmetrize().expect("square by construction");
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn scalar_moments_match_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.add(x);
        }
        assert!(approx_eq(m.mean(), 5.0, 1e-12));
        // Unbiased variance of this classic dataset is 32/7.
        assert!(approx_eq(m.variance(), 32.0 / 7.0, 1e-12));
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn scalar_merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 10.0, -4.0, 0.5];
        let mut all = RunningMoments::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &xs[..3] {
            a.add(x);
        }
        for &x in &xs[3..] {
            b.add(x);
        }
        a.merge(&b);
        assert!(approx_eq(a.mean(), all.mean(), 1e-12));
        assert!(approx_eq(a.variance(), all.variance(), 1e-12));
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.add(1.0);
        a.add(3.0);
        let before = (a.mean(), a.variance());
        a.merge(&RunningMoments::new());
        assert_eq!((a.mean(), a.variance()), before);

        let mut empty = RunningMoments::new();
        let mut b = RunningMoments::new();
        b.add(5.0);
        empty.merge(&b);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn vector_moments_match_direct() {
        let data = [
            Vector::new(vec![1.0, 2.0]),
            Vector::new(vec![3.0, 0.0]),
            Vector::new(vec![2.0, 4.0]),
            Vector::new(vec![0.0, 2.0]),
        ];
        let mut m = RunningVectorMoments::new(2);
        for x in &data {
            m.add(x).unwrap();
        }
        assert!(approx_eq(m.mean()[0], 1.5, 1e-12));
        assert!(approx_eq(m.mean()[1], 2.0, 1e-12));
        // Direct covariance
        let cov = m.covariance();
        // var(x) = ((1-1.5)²+(3-1.5)²+(2-1.5)²+(0-1.5)²)/3 = (0.25+2.25+0.25+2.25)/3
        assert!(approx_eq(cov[(0, 0)], 5.0 / 3.0, 1e-12));
        // var(y) = (0+4+4+0)/3
        assert!(approx_eq(cov[(1, 1)], 8.0 / 3.0, 1e-12));
        assert!(approx_eq(cov[(0, 1)], cov[(1, 0)], 1e-15));
    }

    #[test]
    fn vector_moments_dimension_check() {
        let mut m = RunningVectorMoments::new(2);
        assert!(m.add(&Vector::zeros(3)).is_err());
        assert_eq!(m.covariance().shape(), (2, 2));
    }
}

//! LU factorization with partial pivoting.
//!
//! Used for determinants and inverses of general (not necessarily
//! positive-definite) square matrices — e.g. validating scatter-matrix
//! updates and computing signed determinants in diagnostics. SPD paths
//! should prefer [`crate::Cholesky`], which is roughly twice as fast and
//! numerically safer.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// Pivot threshold below which a matrix is declared singular.
const PIVOT_EPS: f64 = 1e-13;

/// LU factorization `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower part is `L` (unit diagonal implied),
    /// upper part including diagonal is `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the source row of output row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1), for the determinant.
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input;
    /// [`LinalgError::Singular`] if a pivot underflows `PIVOT_EPS` (1e-13) relative
    /// to the matrix scale.
    pub fn factor(a: &Matrix) -> Result<Self> {
        a.require_square()?;
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a
            .as_slice()
            .iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1.0);

        for col in 0..n {
            // Find pivot row.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS * scale {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let inv_pivot = 1.0 / lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] * inv_pivot;
                lu[(r, col)] = factor;
                for j in (col + 1)..n {
                    let sub = factor * lu[(col, j)];
                    lu[(r, j)] -= sub;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Determinant of the original matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Natural log of `|det|` together with its sign (`+1.0` / `-1.0`).
    #[must_use]
    pub fn log_abs_det(&self) -> (f64, f64) {
        let mut log = 0.0;
        let mut sign = self.sign;
        for i in 0..self.dim() {
            let d = self.lu[(i, i)];
            log += d.abs().ln();
            if d < 0.0 {
                sign = -sign;
            }
        }
        (log, sign)
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `b.len() != dim`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        for i in 0..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Full inverse of the original matrix.
    #[must_use]
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e).expect("dimension verified");
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn det_of_known_matrix() {
        // det = 1*(4*6-5*5) - 2*(2*6-5*3) + 3*(2*5-4*3) = -1 - 2*(-3) + 3*(-2) = -1
        let a =
            Matrix::from_rows_vec(3, 3, vec![1.0, 2.0, 3.0, 2.0, 4.0, 5.0, 3.0, 5.0, 6.0]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!(approx_eq(lu.det(), -1.0, 1e-10));
        let (log, sign) = lu.log_abs_det();
        assert!(approx_eq(log, 0.0, 1e-10));
        assert_eq!(sign, -1.0);
    }

    #[test]
    fn solve_matches() {
        let a = Matrix::from_rows_vec(2, 2, vec![0.0, 2.0, 3.0, 1.0]).unwrap();
        // Requires pivoting (zero leading entry).
        let lu = Lu::factor(&a).unwrap();
        let b = Vector::new(vec![4.0, 5.0]);
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(approx_eq(ax[0], 4.0, 1e-12));
        assert!(approx_eq(ax[1], 5.0, 1e-12));
    }

    #[test]
    fn inverse_roundtrip() {
        let a =
            Matrix::from_rows_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 4.0]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], expect, 1e-10));
            }
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(Lu::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn permutation_sign_counted() {
        // A permutation matrix swapping two rows has det -1.
        let a = Matrix::from_rows_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(approx_eq(Lu::factor(&a).unwrap().det(), -1.0, 1e-12));
    }
}

//! Cholesky factorization `A = L L^T` for symmetric positive definite
//! matrices.
//!
//! Every multivariate-normal density evaluation and every Wishart draw in
//! the Gibbs sampler goes through this factorization, so it exposes the
//! primitives those need directly: triangular solves, log-determinant, full
//! inverse, and access to `L` for the Bartlett construction.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// Outcome of a [`Cholesky::factor_with_jitter`] recovery: how many
/// retries were spent and the ridge epsilon that finally succeeded.
///
/// `attempts == 0` (and `epsilon == 0.0`) means the matrix factored
/// cleanly on the first try with no perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Number of ridge-perturbed retries consumed (0 for a clean factor).
    pub attempts: usize,
    /// Diagonal ridge `ε` added to the matrix that finally factored
    /// (`0.0` for a clean factor).
    pub epsilon: f64,
}

/// Cholesky factor of a symmetric positive-definite matrix.
///
/// # Examples
/// ```
/// use rheotex_linalg::{Cholesky, Matrix, Vector};
///
/// let a = Matrix::from_rows_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
/// let ch = Cholesky::factor(&a).unwrap();
/// let x = ch.solve(&Vector::new(vec![1.0, 2.0])).unwrap();
/// let back = a.matvec(&x).unwrap();
/// assert!((back[0] - 1.0).abs() < 1e-12 && (back[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper triangle is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a` (which must be square and symmetric positive
    /// definite). Only the lower triangle of `a` is read, so callers may
    /// pass matrices with slight rounding asymmetry.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input;
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        a.require_square()?;
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Factorizes `a`, recovering from a non-positive-definite failure by
    /// retrying with an escalating diagonal ridge `a + εI` (bounded by
    /// `max_attempts` retries). The shared retry policy for every caller
    /// that must survive a numerically indefinite scatter matrix.
    ///
    /// The starting epsilon is `1e-10` times the mean absolute diagonal
    /// (floored at `1e-10` for a zero diagonal) and escalates by `×100`
    /// per retry. Returns the factor together with a [`Jitter`] describing
    /// the recovery; a matrix that factors cleanly reports
    /// `Jitter { attempts: 0, epsilon: 0.0 }`.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input;
    /// [`LinalgError::NotPositiveDefinite`] if the diagonal is non-finite
    /// (jitter cannot rescue NaN/Inf) or every retry fails.
    pub fn factor_with_jitter(a: &Matrix, max_attempts: usize) -> Result<(Self, Jitter)> {
        match Self::factor(a) {
            Ok(ch) => {
                return Ok((
                    ch,
                    Jitter {
                        attempts: 0,
                        epsilon: 0.0,
                    },
                ));
            }
            Err(err @ LinalgError::NotSquare { .. }) => return Err(err),
            Err(_) => {}
        }
        let n = a.nrows();
        let mut diag_mean = 0.0;
        for i in 0..n {
            let d = a[(i, i)];
            if !d.is_finite() {
                // A NaN/Inf diagonal is data corruption, not rounding;
                // no finite ridge can repair it, so fail fast.
                return Err(LinalgError::NotPositiveDefinite { pivot: i });
            }
            diag_mean += d.abs();
        }
        if n > 0 {
            diag_mean /= n as f64;
        }
        let mut epsilon = (1e-10 * diag_mean).max(1e-10);
        let mut last = LinalgError::NotPositiveDefinite { pivot: 0 };
        for attempt in 1..=max_attempts {
            let mut perturbed = a.clone();
            for i in 0..n {
                perturbed[(i, i)] += epsilon;
            }
            match Self::factor(&perturbed) {
                Ok(ch) => {
                    return Ok((
                        ch,
                        Jitter {
                            attempts: attempt,
                            epsilon,
                        },
                    ));
                }
                Err(err) => last = err,
            }
            epsilon *= 100.0;
        }
        Err(last)
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// The lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Log-determinant of the original matrix:
    /// `log|A| = 2 * sum_i log L_ii`.
    #[must_use]
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `b.len() != dim`.
    pub fn solve_lower(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_lower",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `L^T x = y` (back substitution).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `y.len() != dim`.
    pub fn solve_upper(&self, y: &Vector) -> Result<Vector> {
        let n = self.dim();
        if y.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_upper",
                lhs: (n, n),
                rhs: (y.len(), 1),
            });
        }
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A x = b` via the two triangular solves.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `b.len() != dim`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Squared Mahalanobis norm `b^T A^{-1} b = ||L^{-1} b||²` — the inner
    /// term of every Gaussian log-density.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `b.len() != dim`.
    pub fn mahalanobis_sq(&self, b: &Vector) -> Result<f64> {
        let y = self.solve_lower(b)?;
        Ok(y.iter().map(|v| v * v).sum())
    }

    /// Full inverse `A^{-1}` (solves against each basis vector). Prefer
    /// [`Self::solve`] / [`Self::mahalanobis_sq`] when possible; the explicit
    /// inverse is needed for Normal-Wishart scale-matrix updates.
    #[must_use]
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            // A is SPD so solve cannot fail once the factorization exists.
            let col = self.solve(&e).expect("dimension verified");
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        // Inverse of SPD is SPD; enforce exact symmetry against rounding.
        inv.symmetrize().expect("square by construction");
        inv
    }

    /// Reconstructs `A = L L^T` (mainly for tests and diagnostics).
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        self.l
            .matmul(&self.l.transpose())
            .expect("square by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd3() -> Matrix {
        // Constructed as B B^T + I, so definitely SPD.
        Matrix::from_rows_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let r = ch.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(r[(i, j)], a[(i, j)], 1e-10));
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Vector::new(vec![1.0, -2.0, 0.5]);
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!(approx_eq(ax[i], b[i], 1e-10));
        }
    }

    #[test]
    fn log_det_matches_known() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(approx_eq(ch.log_det(), (24.0_f64).ln(), 1e-12));
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        let i3 = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(prod[(i, j)], i3[(i, j)], 1e-9));
            }
        }
    }

    #[test]
    fn mahalanobis_matches_quadratic_form() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let v = Vector::new(vec![0.3, -1.1, 2.0]);
        let direct = ch.inverse().quadratic_form(&v).unwrap();
        assert!(approx_eq(ch.mahalanobis_sq(&v).unwrap(), direct, 1e-9));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_is_noop_for_spd_input() {
        let a = spd3();
        let (ch, jitter) = Cholesky::factor_with_jitter(&a, 8).unwrap();
        assert_eq!(
            jitter,
            Jitter {
                attempts: 0,
                epsilon: 0.0
            }
        );
        let clean = Cholesky::factor(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(ch.l()[(i, j)], clean.l()[(i, j)]);
            }
        }
    }

    #[test]
    fn jitter_rescues_indefinite_matrix() {
        // Indefinite: eigenvalues 3 and -1. A ridge of slightly more than
        // 1 restores positive definiteness, which the escalation reaches.
        let a = Matrix::from_rows_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let (ch, jitter) = Cholesky::factor_with_jitter(&a, 8).unwrap();
        assert!(jitter.attempts > 0);
        assert!(jitter.epsilon > 1.0);
        assert_eq!(ch.dim(), 2);
    }

    #[test]
    fn jitter_gives_up_after_max_attempts() {
        let a = Matrix::from_rows_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        // One attempt at ε ≈ 1e-10 cannot fix eigenvalue -1.
        assert!(matches!(
            Cholesky::factor_with_jitter(&a, 1),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            Cholesky::factor_with_jitter(&a, 0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rejects_non_finite_diagonal() {
        let a = Matrix::from_rows_vec(2, 2, vec![f64::NAN, 0.0, 0.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::factor_with_jitter(&a, 8),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor_with_jitter(&a, 8),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_diag(&[9.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(approx_eq(ch.l()[(0, 0)], 3.0, 1e-12));
        assert!(approx_eq(ch.log_det(), (9.0_f64).ln(), 1e-12));
    }
}

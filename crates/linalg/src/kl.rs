//! Kullback-Leibler divergences used by the topic ↔ rheology linkage.
//!
//! The paper links each empirical food-science setting (a point in gel
//! concentration space) to its most similar topic (a Gaussian) and ranks
//! recipes within a topic by the divergence of their emulsion concentration
//! profiles. Three forms are needed:
//!
//! * [`kl_gaussian`] — closed-form KL between two multivariate normals;
//! * [`kl_point_gaussian`] — KL from a narrow "measurement" Gaussian
//!   centred on an empirical setting to a topic Gaussian, the form used for
//!   Table II(a)'s last column (equivalently, a regularized Mahalanobis
//!   score);
//! * [`kl_discrete`] — smoothed discrete KL between normalized
//!   concentration profiles, used to rank recipes by emulsion similarity
//!   (Fig. 3 / Fig. 4).

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// KL divergence `KL(N₀ ‖ N₁)` between multivariate normals given by
/// `(μ₀, Σ₀)` and `(μ₁, Σ₁)`:
///
/// `½ [ tr(Σ₁⁻¹ Σ₀) + (μ₁−μ₀)ᵀ Σ₁⁻¹ (μ₁−μ₀) − D + ln(|Σ₁|/|Σ₀|) ]`.
///
/// # Errors
/// Shape mismatches or non-SPD covariances.
pub fn kl_gaussian(mu0: &Vector, cov0: &Matrix, mu1: &Vector, cov1: &Matrix) -> Result<f64> {
    let d = mu0.len();
    if mu1.len() != d || cov0.shape() != (d, d) || cov1.shape() != (d, d) {
        return Err(LinalgError::ShapeMismatch {
            op: "kl_gaussian",
            lhs: (d, 1),
            rhs: (mu1.len(), 1),
        });
    }
    let ch0 = Cholesky::factor(cov0)?;
    let ch1 = Cholesky::factor(cov1)?;
    let cov1_inv = ch1.inverse();
    let tr = cov1_inv.matmul(cov0)?.trace()?;
    let diff = mu1.sub(mu0)?;
    let maha = ch1.mahalanobis_sq(&diff)?;
    Ok(0.5 * (tr + maha - d as f64 + ch1.log_det() - ch0.log_det()))
}

/// KL from a narrow measurement Gaussian `N(x, ε²I)` at a point `x` to the
/// topic Gaussian `N(μ, Σ)`. As `ε → 0` this is dominated by
/// `½ (x−μ)ᵀ Σ⁻¹ (x−μ) + ½ ln|Σ|` (up to constants shared across topics),
/// so ranking by this score ranks topics by likelihood of the setting.
///
/// # Errors
/// Shape mismatches or a non-SPD covariance.
pub fn kl_point_gaussian(x: &Vector, mu: &Vector, cov: &Matrix, eps: f64) -> Result<f64> {
    if eps <= 0.0 {
        return Err(LinalgError::InvalidParameter {
            what: format!("measurement width eps {eps} must be positive"),
        });
    }
    let d = x.len();
    let point_cov = Matrix::scaled_identity(d, eps * eps);
    kl_gaussian(x, &point_cov, mu, cov)
}

/// Smoothed discrete KL divergence between two non-negative profiles.
///
/// # Examples
/// ```
/// use rheotex_linalg::{kl::kl_discrete, Vector};
///
/// let p = Vector::new(vec![0.5, 0.5]);
/// let q = Vector::new(vec![0.9, 0.1]);
/// assert!(kl_discrete(&p, &q, 0.0).unwrap() > 0.0);
/// assert!(kl_discrete(&p, &p, 0.0).unwrap().abs() < 1e-12);
/// ```
///
/// Both inputs are normalized to the simplex after adding `smoothing` to
/// every component (so zero components — e.g. a recipe using no yogurt —
/// contribute finitely). This is how recipes are ranked by emulsion
/// similarity to a reference dish.
///
/// # Errors
/// [`LinalgError::ShapeMismatch`] for different lengths;
/// [`LinalgError::InvalidParameter`] for negative entries or non-positive
/// smoothing with zero entries present.
pub fn kl_discrete(p: &Vector, q: &Vector, smoothing: f64) -> Result<f64> {
    if p.len() != q.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "kl_discrete",
            lhs: (p.len(), 1),
            rhs: (q.len(), 1),
        });
    }
    if smoothing < 0.0 {
        return Err(LinalgError::InvalidParameter {
            what: format!("smoothing {smoothing} must be non-negative"),
        });
    }
    if p.iter().any(|&x| x < 0.0) || q.iter().any(|&x| x < 0.0) {
        return Err(LinalgError::InvalidParameter {
            what: "profiles must be non-negative".to_string(),
        });
    }
    let ps = p.map(|x| x + smoothing).normalized()?;
    let qs = q.map(|x| x + smoothing).normalized()?;
    let mut kl = 0.0;
    for (pi, qi) in ps.iter().zip(qs.iter()) {
        if *pi > 0.0 {
            if *qi <= 0.0 {
                return Err(LinalgError::InvalidParameter {
                    what: "q has a zero where p is positive; use smoothing > 0".to_string(),
                });
            }
            kl += pi * (pi / qi).ln();
        }
    }
    // Rounding can produce tiny negative values for near-identical inputs.
    Ok(kl.max(0.0))
}

/// Symmetrized Jensen–Shannon divergence between two non-negative profiles
/// (smoothed as in [`kl_discrete`]). Bounded by `ln 2`.
///
/// # Errors
/// Same conditions as [`kl_discrete`].
pub fn js_divergence(p: &Vector, q: &Vector, smoothing: f64) -> Result<f64> {
    if p.len() != q.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "js_divergence",
            lhs: (p.len(), 1),
            rhs: (q.len(), 1),
        });
    }
    let ps = p.map(|x| x + smoothing).normalized()?;
    let qs = q.map(|x| x + smoothing).normalized()?;
    let m = ps.add(&qs)?.scale(0.5);
    Ok(0.5 * kl_discrete(&ps, &m, 0.0)? + 0.5 * kl_discrete(&qs, &m, 0.0)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn gaussian_kl_is_zero_for_identical() {
        let mu = Vector::new(vec![1.0, 2.0]);
        let cov = Matrix::from_rows_vec(2, 2, vec![2.0, 0.3, 0.3, 1.0]).unwrap();
        let kl = kl_gaussian(&mu, &cov, &mu, &cov).unwrap();
        assert!(kl.abs() < 1e-10, "kl={kl}");
    }

    #[test]
    fn gaussian_kl_univariate_closed_form() {
        // KL(N(m0,s0²) || N(m1,s1²)) = ln(s1/s0) + (s0² + (m0−m1)²)/(2 s1²) − ½
        let (m0, s0, m1, s1) = (1.0_f64, 2.0_f64, 3.0_f64, 1.5_f64);
        let kl = kl_gaussian(
            &Vector::new(vec![m0]),
            &Matrix::from_diag(&[s0 * s0]),
            &Vector::new(vec![m1]),
            &Matrix::from_diag(&[s1 * s1]),
        )
        .unwrap();
        let expect = (s1 / s0).ln() + (s0 * s0 + (m0 - m1) * (m0 - m1)) / (2.0 * s1 * s1) - 0.5;
        assert!(approx_eq(kl, expect, 1e-10));
    }

    #[test]
    fn gaussian_kl_nonnegative_and_asymmetric() {
        let mu0 = Vector::new(vec![0.0, 0.0]);
        let mu1 = Vector::new(vec![1.0, -1.0]);
        let c0 = Matrix::from_diag(&[1.0, 1.0]);
        let c1 = Matrix::from_diag(&[0.5, 2.0]);
        let ab = kl_gaussian(&mu0, &c0, &mu1, &c1).unwrap();
        let ba = kl_gaussian(&mu1, &c1, &mu0, &c0).unwrap();
        assert!(ab > 0.0 && ba > 0.0);
        assert!((ab - ba).abs() > 1e-6, "KL should be asymmetric here");
    }

    #[test]
    fn point_gaussian_ranks_by_proximity() {
        let cov = Matrix::from_diag(&[1.0, 1.0]);
        let near = Vector::new(vec![0.1, 0.0]);
        let far = Vector::new(vec![3.0, 3.0]);
        let mu = Vector::zeros(2);
        let kn = kl_point_gaussian(&near, &mu, &cov, 1e-3).unwrap();
        let kf = kl_point_gaussian(&far, &mu, &cov, 1e-3).unwrap();
        assert!(kn < kf);
        assert!(kl_point_gaussian(&near, &mu, &cov, 0.0).is_err());
    }

    #[test]
    fn discrete_kl_zero_for_identical() {
        let p = Vector::new(vec![0.2, 0.3, 0.5]);
        assert!(kl_discrete(&p, &p, 0.0).unwrap().abs() < 1e-12);
    }

    #[test]
    fn discrete_kl_known_value() {
        let p = Vector::new(vec![0.5, 0.5]);
        let q = Vector::new(vec![0.9, 0.1]);
        let expect = 0.5 * (0.5_f64 / 0.9).ln() + 0.5 * (0.5_f64 / 0.1).ln();
        assert!(approx_eq(kl_discrete(&p, &q, 0.0).unwrap(), expect, 1e-12));
    }

    #[test]
    fn discrete_kl_smoothing_handles_zeros() {
        let p = Vector::new(vec![1.0, 0.0]);
        let q = Vector::new(vec![0.0, 1.0]);
        assert!(kl_discrete(&p, &q, 0.0).is_err());
        let kl = kl_discrete(&p, &q, 1e-6).unwrap();
        assert!(kl.is_finite() && kl > 0.0);
    }

    #[test]
    fn discrete_kl_accepts_unnormalized() {
        // Scaling both profiles must not change the divergence.
        let p = Vector::new(vec![2.0, 3.0, 5.0]);
        let q = Vector::new(vec![1.0, 1.0, 1.0]);
        let a = kl_discrete(&p, &q, 0.0).unwrap();
        let b = kl_discrete(&p.scale(7.0), &q.scale(0.1), 0.0).unwrap();
        assert!(approx_eq(a, b, 1e-12));
    }

    #[test]
    fn js_bounded_and_symmetric() {
        let p = Vector::new(vec![1.0, 0.0]);
        let q = Vector::new(vec![0.0, 1.0]);
        let js = js_divergence(&p, &q, 1e-9).unwrap();
        assert!(js <= std::f64::consts::LN_2 + 1e-9);
        let js_rev = js_divergence(&q, &p, 1e-9).unwrap();
        assert!(approx_eq(js, js_rev, 1e-12));
    }

    #[test]
    fn rejects_negative_profiles() {
        let p = Vector::new(vec![-0.1, 1.1]);
        let q = Vector::new(vec![0.5, 0.5]);
        assert!(kl_discrete(&p, &q, 0.0).is_err());
    }
}

//! Multivariate Student-t distribution.
//!
//! This is the posterior predictive of the Normal-Wishart model: when the
//! Gaussian topic parameters are integrated out rather than sampled (the
//! fully-collapsed Gibbs variant), each recipe's concentration vector is
//! scored under `t_ν(μ, Σ)` with parameters produced by
//! [`super::NormalWishart::posterior_predictive`].

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::special::ln_gamma;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// Multivariate Student-t with location `μ`, scale (shape) matrix `Σ`, and
/// degrees of freedom `ν > 0`. For `ν > 2` the covariance is
/// `Σ ν / (ν − 2)`.
#[derive(Debug, Clone)]
pub struct MultivariateT {
    location: Vector,
    chol_scale: Cholesky,
    dof: f64,
    /// Pre-computed log normalizer (everything not depending on x).
    log_norm: f64,
}

impl MultivariateT {
    /// Creates the distribution; `scale` must be SPD and `dof > 0`.
    ///
    /// # Errors
    /// [`LinalgError::InvalidParameter`] for non-positive `dof`; shape or
    /// definiteness errors from the factorization.
    pub fn new(location: Vector, scale: &Matrix, dof: f64) -> Result<Self> {
        if !(dof.is_finite() && dof > 0.0) {
            return Err(LinalgError::InvalidParameter {
                what: format!("Student-t dof {dof} must be positive"),
            });
        }
        if scale.nrows() != location.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "MultivariateT::new",
                lhs: (location.len(), 1),
                rhs: scale.shape(),
            });
        }
        let chol_scale = Cholesky::factor(scale)?;
        let d = location.len() as f64;
        let log_norm = ln_gamma((dof + d) / 2.0)
            - ln_gamma(dof / 2.0)
            - 0.5 * d * (dof * std::f64::consts::PI).ln()
            - 0.5 * chol_scale.log_det();
        Ok(Self {
            location,
            chol_scale,
            dof,
            log_norm,
        })
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.location.len()
    }

    /// Degrees of freedom.
    #[must_use]
    pub fn dof(&self) -> f64 {
        self.dof
    }

    /// Location vector (the mode; also the mean when `ν > 1`).
    #[must_use]
    pub fn location(&self) -> &Vector {
        &self.location
    }

    /// Log-density at `x`:
    /// `log_norm − ((ν+D)/2) ln(1 + Δ²/ν)` with `Δ²` the Mahalanobis
    /// distance under the scale matrix.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] for wrong dimension.
    pub fn log_pdf(&self, x: &Vector) -> Result<f64> {
        let diff = x.sub(&self.location)?;
        let maha = self.chol_scale.mahalanobis_sq(&diff)?;
        let d = self.dim() as f64;
        Ok(self.log_norm - 0.5 * (self.dof + d) * (1.0 + maha / self.dof).ln_1p_exact())
    }
}

/// `ln(1 + x)` but for values where `x` may be large; plain `ln` is fine,
/// the trait exists so the formula above reads close to the math. (For
/// small Mahalanobis distances `ln_1p` is the accurate form.)
trait Ln1pExact {
    fn ln_1p_exact(self) -> f64;
}

impl Ln1pExact for f64 {
    #[inline]
    fn ln_1p_exact(self) -> f64 {
        // self = 1 + maha/ν  (≥ 1); compute ln via ln_1p on the excess for
        // accuracy near 1.
        (self - 1.0).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn univariate_matches_standard_t_density() {
        // Standard t with ν=3 at x=0: Γ(2)/(Γ(1.5)·sqrt(3π)) = 1/(Γ(1.5)√(3π))
        let t = MultivariateT::new(Vector::zeros(1), &Matrix::identity(1), 3.0).unwrap();
        let at0 = t.log_pdf(&Vector::zeros(1)).unwrap();
        let expect = ln_gamma(2.0) - ln_gamma(1.5) - 0.5 * (3.0 * std::f64::consts::PI).ln();
        assert!(approx_eq(at0, expect, 1e-12));
    }

    #[test]
    fn symmetric_around_location() {
        let loc = Vector::new(vec![1.0, -2.0]);
        let t = MultivariateT::new(loc.clone(), &Matrix::identity(2), 5.0).unwrap();
        let a = t.log_pdf(&Vector::new(vec![1.5, -2.5])).unwrap();
        let b = t.log_pdf(&Vector::new(vec![0.5, -1.5])).unwrap();
        assert!(approx_eq(a, b, 1e-12));
    }

    #[test]
    fn heavier_tails_than_gaussian() {
        use super::super::gaussian::GaussianCov;
        let t = MultivariateT::new(Vector::zeros(2), &Matrix::identity(2), 3.0).unwrap();
        let g = GaussianCov::new(Vector::zeros(2), &Matrix::identity(2)).unwrap();
        let far = Vector::new(vec![6.0, 6.0]);
        assert!(t.log_pdf(&far).unwrap() > g.log_pdf(&far).unwrap());
    }

    #[test]
    fn converges_to_gaussian_for_large_dof() {
        use super::super::gaussian::GaussianCov;
        let t = MultivariateT::new(Vector::zeros(2), &Matrix::identity(2), 1e7).unwrap();
        let g = GaussianCov::new(Vector::zeros(2), &Matrix::identity(2)).unwrap();
        for &pt in &[[0.0, 0.0], [1.0, 1.0], [2.0, -1.0]] {
            let x = Vector::new(pt.to_vec());
            assert!(
                (t.log_pdf(&x).unwrap() - g.log_pdf(&x).unwrap()).abs() < 1e-4,
                "point {pt:?}"
            );
        }
    }

    #[test]
    fn integrates_to_one_univariate() {
        let t = MultivariateT::new(Vector::zeros(1), &Matrix::identity(1), 4.0).unwrap();
        let step = 0.01;
        let mut total = 0.0;
        let mut x = -60.0;
        while x < 60.0 {
            total += t.log_pdf(&Vector::new(vec![x])).unwrap().exp() * step;
            x += step;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral={total}");
    }

    #[test]
    fn validates_parameters() {
        assert!(MultivariateT::new(Vector::zeros(2), &Matrix::identity(2), 0.0).is_err());
        assert!(MultivariateT::new(Vector::zeros(3), &Matrix::identity(2), 2.0).is_err());
        let t = MultivariateT::new(Vector::zeros(2), &Matrix::identity(2), 2.0).unwrap();
        assert!(t.log_pdf(&Vector::zeros(3)).is_err());
    }
}

//! The Wishart distribution `W(Λ | S, ν)` over symmetric positive-definite
//! precision matrices.
//!
//! Convention: `S` is the **scale matrix** and `ν ≥ D` the degrees of
//! freedom, with `E[Λ] = ν S`. This matches the parameterization in Eq. (4)
//! of the paper, where the topic precision is drawn as
//! `Λ_k ~ W(ν_c, S_c)` after the conjugate update.
//!
//! Sampling uses the Bartlett decomposition: with `S = L L^T`, draw a lower
//! triangular `A` with `A_ii = sqrt(χ²(ν − i))` and `A_ij ~ N(0,1)` below
//! the diagonal, then `Λ = (L A)(L A)^T ~ W(S, ν)`.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::special::ln_multigamma;
use crate::{LinalgError, Result};
use rand::Rng;

use super::scalar::{sample_chi_square, sample_std_normal};

/// Wishart distribution with scale matrix `S` and degrees of freedom `ν`.
#[derive(Debug, Clone)]
pub struct Wishart {
    dof: f64,
    chol_scale: Cholesky,
    dim: usize,
}

impl Wishart {
    /// Creates the distribution. Requires `scale` SPD and `dof > dim - 1`.
    ///
    /// # Errors
    /// [`LinalgError::InvalidParameter`] for insufficient degrees of
    /// freedom; factorization errors for non-SPD scale.
    pub fn new(scale: &Matrix, dof: f64) -> Result<Self> {
        let chol_scale = Cholesky::factor(scale)?;
        let dim = chol_scale.dim();
        if dof <= dim as f64 - 1.0 {
            return Err(LinalgError::InvalidParameter {
                what: format!("Wishart dof {dof} must exceed dim-1 = {}", dim - 1),
            });
        }
        Ok(Self {
            dof,
            chol_scale,
            dim,
        })
    }

    /// Matrix dimension `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Degrees of freedom `ν`.
    #[must_use]
    pub fn dof(&self) -> f64 {
        self.dof
    }

    /// Expected value `E[Λ] = ν S`.
    #[must_use]
    pub fn mean(&self) -> Matrix {
        self.chol_scale.reconstruct().scale(self.dof)
    }

    /// Draws a precision matrix via the Bartlett decomposition.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Matrix {
        let d = self.dim;
        let mut a = Matrix::zeros(d, d);
        for i in 0..d {
            a[(i, i)] = sample_chi_square(rng, self.dof - i as f64).sqrt();
            for j in 0..i {
                a[(i, j)] = sample_std_normal(rng);
            }
        }
        let la = self
            .chol_scale
            .l()
            .matmul(&a)
            .expect("square by construction");
        let mut w = la.matmul(&la.transpose()).expect("square by construction");
        w.symmetrize().expect("square by construction");
        w
    }

    /// Log-density at an SPD matrix `x`:
    ///
    /// `((ν−D−1)/2) ln|X| − tr(S^{-1} X)/2 − (νD/2) ln 2 − (ν/2) ln|S| − ln Γ_D(ν/2)`.
    ///
    /// # Errors
    /// Factorization errors if `x` is not SPD or shapes mismatch.
    pub fn log_pdf(&self, x: &Matrix) -> Result<f64> {
        if x.shape() != (self.dim, self.dim) {
            return Err(LinalgError::ShapeMismatch {
                op: "wishart_log_pdf",
                lhs: (self.dim, self.dim),
                rhs: x.shape(),
            });
        }
        let chol_x = Cholesky::factor(x)?;
        let d = self.dim as f64;
        let nu = self.dof;
        // tr(S^{-1} X) via solves: sum_j (S^{-1} X)_{jj}.
        let s_inv = self.chol_scale.inverse();
        let tr = s_inv.matmul(x)?.trace()?;
        Ok(0.5 * (nu - d - 1.0) * chol_x.log_det()
            - 0.5 * tr
            - 0.5 * nu * d * std::f64::consts::LN_2
            - 0.5 * nu * self.chol_scale.log_det()
            - ln_multigamma(self.dim, nu / 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    #[test]
    fn sample_mean_matches_nu_s() {
        let mut r = rng();
        let scale = Matrix::from_rows_vec(2, 2, vec![0.5, 0.1, 0.1, 0.3]).unwrap();
        let w = Wishart::new(&scale, 5.0).unwrap();
        let n = 20_000;
        let mut acc = Matrix::zeros(2, 2);
        for _ in 0..n {
            acc.axpy(1.0 / n as f64, &w.sample(&mut r)).unwrap();
        }
        let mean = w.mean();
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (acc[(i, j)] - mean[(i, j)]).abs() < 0.05,
                    "({i},{j}): got {} want {}",
                    acc[(i, j)],
                    mean[(i, j)]
                );
            }
        }
    }

    #[test]
    fn samples_are_spd() {
        let mut r = rng();
        let w = Wishart::new(&Matrix::identity(3), 4.0).unwrap();
        for _ in 0..100 {
            let s = w.sample(&mut r);
            assert!(Cholesky::factor(&s).is_ok());
            assert!(s.asymmetry().unwrap() < 1e-12);
        }
    }

    #[test]
    fn one_dim_reduces_to_gamma() {
        // W(λ | s, ν) in 1-D is Gamma(shape ν/2, scale 2s).
        let mut r = rng();
        let s = 0.7;
        let nu = 6.0;
        let w = Wishart::new(&Matrix::from_diag(&[s]), nu).unwrap();
        let n = 40_000;
        let mut mean = 0.0;
        for _ in 0..n {
            mean += w.sample(&mut r)[(0, 0)] / n as f64;
        }
        assert!((mean - nu * s).abs() < 0.06, "mean={mean}");
    }

    #[test]
    fn log_pdf_one_dim_matches_gamma_density() {
        // Cross-check the normalizer against the 1-D gamma density.
        let s = 0.5;
        let nu = 5.0;
        let w = Wishart::new(&Matrix::from_diag(&[s]), nu).unwrap();
        let x = 2.3;
        let lp = w.log_pdf(&Matrix::from_diag(&[x])).unwrap();
        // Gamma(shape=ν/2, scale=2s) log-density:
        let shape = nu / 2.0;
        let scale = 2.0 * s;
        let expect = (shape - 1.0) * x.ln()
            - x / scale
            - shape * scale.ln()
            - crate::special::ln_gamma(shape);
        assert!(approx_eq(lp, expect, 1e-10), "lp={lp} expect={expect}");
    }

    #[test]
    fn insufficient_dof_rejected() {
        let scale = Matrix::identity(3);
        assert!(Wishart::new(&scale, 1.5).is_err());
        assert!(Wishart::new(&scale, 2.5).is_ok());
    }

    #[test]
    fn log_pdf_shape_mismatch() {
        let w = Wishart::new(&Matrix::identity(2), 3.0).unwrap();
        assert!(w.log_pdf(&Matrix::identity(3)).is_err());
    }
}

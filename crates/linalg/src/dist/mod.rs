//! Probability distributions: samplers and (log-)densities.
//!
//! Everything the joint topic model's Gibbs sweep touches lives here:
//!
//! * scalar building blocks — standard normal, gamma, chi-square
//!   ([`scalar`]);
//! * discrete draws — categorical (linear and log-space/Gumbel forms) and
//!   Dirichlet ([`discrete`]);
//! * multivariate normals parameterized by covariance or by precision
//!   ([`gaussian`]), matching how the model alternates between the two
//!   (sampling topic means needs covariance, density evaluation of
//!   recipes needs the sampled precision);
//! * the Wishart distribution via the Bartlett decomposition ([`wishart`]);
//! * the Normal-Wishart conjugate prior with closed-form posterior updates
//!   and its Student-t posterior predictive ([`normal_wishart`],
//!   [`student_t`]) — Eq. (4) of the paper and the fully-collapsed variant;
//! * a per-topic memo of those predictives ([`cache`]) so collapsed Gibbs
//!   sweeps refactor a topic's scale matrix only when its sufficient
//!   statistics actually changed.
//!
//! All samplers take `&mut impl Rng` so experiments can inject a seeded
//! `ChaCha8Rng` and be bit-for-bit reproducible.

pub mod cache;
pub mod discrete;
pub mod gaussian;
pub mod normal_wishart;
pub mod scalar;
pub mod student_t;
pub mod wishart;

pub use cache::PredictiveCache;
pub use discrete::{sample_categorical, sample_categorical_log, sample_dirichlet, Dirichlet};
pub use gaussian::{GaussianCov, GaussianPrecision};
pub use normal_wishart::{GaussianStats, NormalWishart};
pub use scalar::{sample_chi_square, sample_gamma, sample_std_normal};
pub use student_t::MultivariateT;
pub use wishart::Wishart;

//! Discrete distributions: categorical draws and the Dirichlet.
//!
//! The Gibbs sweep samples a topic per texture token (`z_dn`) and per
//! recipe (`y_d`) from *unnormalized* weights, so [`sample_categorical`]
//! accepts unnormalized non-negative weights directly, and
//! [`sample_categorical_log`] takes unnormalized log-weights (the `y_d`
//! conditional multiplies Gaussian densities, which must stay in log
//! space to avoid underflow).

use crate::special::ln_gamma;
use crate::vector::Vector;
use crate::{LinalgError, Result};
use rand::Rng;

use super::scalar::sample_gamma;

/// Samples an index from unnormalized non-negative weights.
///
/// # Errors
/// [`LinalgError::Empty`] for no weights; [`LinalgError::InvalidParameter`]
/// if any weight is negative/non-finite or all are zero.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Result<usize> {
    if weights.is_empty() {
        return Err(LinalgError::Empty {
            op: "sample_categorical",
        });
    }
    let mut total = 0.0;
    for &w in weights {
        if !(w.is_finite() && w >= 0.0) {
            return Err(LinalgError::InvalidParameter {
                what: format!("categorical weight {w} must be finite and non-negative"),
            });
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(LinalgError::InvalidParameter {
            what: "categorical weights sum to zero".to_string(),
        });
    }
    let u: f64 = rng.gen_range(0.0..total);
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return Ok(i);
        }
    }
    // Rounding can leave u == total; return the last positive-weight index.
    Ok(weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("total > 0 implies a positive weight"))
}

/// Samples an index from unnormalized log-weights by exponentiating
/// relative to the maximum (numerically safe for very negative values).
///
/// # Errors
/// [`LinalgError::Empty`] for no weights; [`LinalgError::InvalidParameter`]
/// if all weights are `-inf` or any is `NaN`/`+inf`.
pub fn sample_categorical_log<R: Rng + ?Sized>(rng: &mut R, log_weights: &[f64]) -> Result<usize> {
    if log_weights.is_empty() {
        return Err(LinalgError::Empty {
            op: "sample_categorical_log",
        });
    }
    let mut max = f64::NEG_INFINITY;
    for &lw in log_weights {
        if lw.is_nan() || lw == f64::INFINITY {
            return Err(LinalgError::InvalidParameter {
                what: format!("log-weight {lw} is not a valid log-probability"),
            });
        }
        max = max.max(lw);
    }
    if max == f64::NEG_INFINITY {
        return Err(LinalgError::InvalidParameter {
            what: "all categorical log-weights are -inf".to_string(),
        });
    }
    let weights: Vec<f64> = log_weights.iter().map(|&lw| (lw - max).exp()).collect();
    sample_categorical(rng, &weights)
}

/// Samples a point on the simplex from `Dirichlet(alphas)` by normalizing
/// independent gamma draws.
///
/// # Errors
/// [`LinalgError::Empty`] / [`LinalgError::InvalidParameter`] for empty or
/// non-positive concentration parameters.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alphas: &[f64]) -> Result<Vector> {
    if alphas.is_empty() {
        return Err(LinalgError::Empty {
            op: "sample_dirichlet",
        });
    }
    for &a in alphas {
        if !(a.is_finite() && a > 0.0) {
            return Err(LinalgError::InvalidParameter {
                what: format!("Dirichlet concentration {a} must be positive"),
            });
        }
    }
    let draws: Vec<f64> = alphas.iter().map(|&a| sample_gamma(rng, a, 1.0)).collect();
    Vector::new(draws).normalized()
}

/// Dirichlet distribution with per-component concentrations.
#[derive(Debug, Clone)]
pub struct Dirichlet {
    alphas: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet with the given concentration vector.
    ///
    /// # Errors
    /// [`LinalgError::Empty`] / [`LinalgError::InvalidParameter`] for empty
    /// or non-positive concentrations.
    pub fn new(alphas: Vec<f64>) -> Result<Self> {
        if alphas.is_empty() {
            return Err(LinalgError::Empty {
                op: "Dirichlet::new",
            });
        }
        for &a in &alphas {
            if !(a.is_finite() && a > 0.0) {
                return Err(LinalgError::InvalidParameter {
                    what: format!("Dirichlet concentration {a} must be positive"),
                });
            }
        }
        Ok(Self { alphas })
    }

    /// Symmetric Dirichlet with `k` components at concentration `alpha`.
    ///
    /// # Errors
    /// Same validation as [`Self::new`].
    pub fn symmetric(k: usize, alpha: f64) -> Result<Self> {
        Self::new(vec![alpha; k])
    }

    /// Number of components.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.alphas.len()
    }

    /// Concentration parameters.
    #[must_use]
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Mean of the distribution (normalized concentrations).
    #[must_use]
    pub fn mean(&self) -> Vector {
        let s: f64 = self.alphas.iter().sum();
        self.alphas.iter().map(|a| a / s).collect()
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        sample_dirichlet(rng, &self.alphas).expect("validated at construction")
    }

    /// Log-density at a simplex point `p` (must be positive and sum ≈ 1).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] for wrong dimension;
    /// [`LinalgError::InvalidParameter`] for off-simplex points.
    pub fn log_pdf(&self, p: &Vector) -> Result<f64> {
        if p.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "dirichlet_log_pdf",
                lhs: (self.dim(), 1),
                rhs: (p.len(), 1),
            });
        }
        let sum = p.sum();
        if (sum - 1.0).abs() > 1e-6 || p.iter().any(|&x| x <= 0.0) {
            return Err(LinalgError::InvalidParameter {
                what: format!("point is not strictly inside the simplex (sum {sum})"),
            });
        }
        let alpha0: f64 = self.alphas.iter().sum();
        let mut lp = ln_gamma(alpha0);
        for (&a, &x) in self.alphas.iter().zip(p.iter()) {
            lp -= ln_gamma(a);
            lp += (a - 1.0) * x.ln();
        }
        Ok(lp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut r = rng();
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[sample_categorical(&mut r, &w).unwrap()] += 1;
        }
        let total: usize = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let expect = w[i] / 10.0;
            let got = c as f64 / total as f64;
            assert!((got - expect).abs() < 0.01, "i={i} got={got}");
        }
    }

    #[test]
    fn categorical_skips_zero_weights() {
        let mut r = rng();
        for _ in 0..1000 {
            let i = sample_categorical(&mut r, &[0.0, 1.0, 0.0]).unwrap();
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn categorical_rejects_bad_input() {
        let mut r = rng();
        assert!(sample_categorical(&mut r, &[]).is_err());
        assert!(sample_categorical(&mut r, &[0.0, 0.0]).is_err());
        assert!(sample_categorical(&mut r, &[-1.0, 2.0]).is_err());
        assert!(sample_categorical(&mut r, &[f64::NAN]).is_err());
    }

    #[test]
    fn categorical_log_matches_linear() {
        let mut r = rng();
        // Very negative log-weights must not underflow to all-zeros.
        let lw = [-1000.0, -1000.0 + (3.0_f64).ln()];
        let mut counts = [0usize; 2];
        for _ in 0..40_000 {
            counts[sample_categorical_log(&mut r, &lw).unwrap()] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn categorical_log_rejects_all_neg_inf() {
        let mut r = rng();
        assert!(sample_categorical_log(&mut r, &[f64::NEG_INFINITY]).is_err());
    }

    #[test]
    fn dirichlet_sample_on_simplex_with_correct_mean() {
        let mut r = rng();
        let d = Dirichlet::new(vec![2.0, 5.0, 3.0]).unwrap();
        let mut acc = Vector::zeros(3);
        let n = 20_000;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!(approx_eq(s.sum(), 1.0, 1e-9));
            acc.axpy(1.0 / n as f64, &s).unwrap();
        }
        let mean = d.mean();
        for i in 0..3 {
            assert!((acc[i] - mean[i]).abs() < 0.01, "i={i}");
        }
    }

    #[test]
    fn dirichlet_log_pdf_uniform_case() {
        // Dirichlet(1,1,1) is uniform over the 2-simplex with density 2.
        let d = Dirichlet::symmetric(3, 1.0).unwrap();
        let p = Vector::new(vec![0.2, 0.3, 0.5]);
        assert!(approx_eq(d.log_pdf(&p).unwrap(), (2.0_f64).ln(), 1e-10));
    }

    #[test]
    fn dirichlet_validates() {
        assert!(Dirichlet::new(vec![]).is_err());
        assert!(Dirichlet::new(vec![1.0, 0.0]).is_err());
        let d = Dirichlet::symmetric(2, 1.0).unwrap();
        assert!(d.log_pdf(&Vector::new(vec![0.5, 0.2])).is_err());
        assert!(d.log_pdf(&Vector::new(vec![0.2, 0.3, 0.5])).is_err());
    }
}

//! Multivariate normal distributions, parameterized either by covariance
//! or by precision.
//!
//! The joint topic model alternates between the two forms: Wishart draws
//! produce a *precision* matrix `Λ_k` used to score recipes
//! (`N(g_d | μ_k, Λ_k)`), while sampling the topic mean needs a draw from
//! `N(μ_c, (β Λ)^{-1})`, i.e. a *covariance*-parameterized Gaussian whose
//! covariance is only available through the precision's Cholesky factor.
//! Both structs pre-factor at construction so repeated density evaluations
//! (thousands per Gibbs sweep) cost one triangular solve each.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};
use rand::Rng;

use super::scalar::sample_std_normal;

const LN_2PI: f64 = 1.837_877_066_409_345_5; // ln(2π)

/// Multivariate normal parameterized by its covariance matrix.
#[derive(Debug, Clone)]
pub struct GaussianCov {
    mean: Vector,
    chol: Cholesky, // factor of the covariance
}

impl GaussianCov {
    /// Creates the distribution; `cov` must be SPD.
    ///
    /// # Errors
    /// Shape or positive-definiteness failures from the Cholesky factor.
    pub fn new(mean: Vector, cov: &Matrix) -> Result<Self> {
        if cov.nrows() != mean.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "GaussianCov::new",
                lhs: (mean.len(), 1),
                rhs: cov.shape(),
            });
        }
        Ok(Self {
            mean,
            chol: Cholesky::factor(cov)?,
        })
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector.
    #[must_use]
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Draws a sample `x = μ + L z` where `Σ = L L^T` and `z ~ N(0, I)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let n = self.dim();
        let z: Vector = (0..n).map(|_| sample_std_normal(rng)).collect();
        let mut x = self.mean.clone();
        let l = self.chol.l();
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += l[(i, k)] * z[k];
            }
            x[i] += acc;
        }
        x
    }

    /// Log-density at `x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] for wrong dimension.
    pub fn log_pdf(&self, x: &Vector) -> Result<f64> {
        let diff = x.sub(&self.mean)?;
        let maha = self.chol.mahalanobis_sq(&diff)?;
        Ok(-0.5 * (self.dim() as f64 * LN_2PI + self.chol.log_det() + maha))
    }
}

/// Multivariate normal parameterized by its precision matrix `Λ = Σ^{-1}`.
#[derive(Debug, Clone)]
pub struct GaussianPrecision {
    mean: Vector,
    precision: Matrix,
    chol: Cholesky, // factor of the precision
}

impl GaussianPrecision {
    /// Creates the distribution; `precision` must be SPD.
    ///
    /// # Errors
    /// Shape or positive-definiteness failures from the Cholesky factor.
    pub fn new(mean: Vector, precision: Matrix) -> Result<Self> {
        if precision.nrows() != mean.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "GaussianPrecision::new",
                lhs: (mean.len(), 1),
                rhs: precision.shape(),
            });
        }
        let chol = Cholesky::factor(&precision)?;
        Ok(Self {
            mean,
            precision,
            chol,
        })
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector.
    #[must_use]
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// The precision matrix `Λ`.
    #[must_use]
    pub fn precision(&self) -> &Matrix {
        &self.precision
    }

    /// Log-density at `x`:
    /// `½ ln|Λ| − D/2 ln 2π − ½ (x−μ)^T Λ (x−μ)`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] for wrong dimension.
    pub fn log_pdf(&self, x: &Vector) -> Result<f64> {
        let diff = x.sub(&self.mean)?;
        let quad = self.precision.quadratic_form(&diff)?;
        Ok(0.5 * (self.chol.log_det() - self.dim() as f64 * LN_2PI - quad))
    }

    /// Draws a sample: with `Λ = L L^T`, `x = μ + L^{-T} z` has covariance
    /// `L^{-T} L^{-1} = Λ^{-1}` as required.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let n = self.dim();
        let z: Vector = (0..n).map(|_| sample_std_normal(rng)).collect();
        let shift = self.chol.solve_upper(&z).expect("dimension verified");
        self.mean.add(&shift).expect("dimension verified")
    }

    /// Covariance matrix `Λ^{-1}` (explicit inverse; prefer
    /// [`Self::log_pdf`] / [`Self::sample`] which avoid it).
    #[must_use]
    pub fn covariance(&self) -> Matrix {
        self.chol.inverse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn cov2() -> Matrix {
        Matrix::from_rows_vec(2, 2, vec![2.0, 0.6, 0.6, 1.0]).unwrap()
    }

    #[test]
    fn cov_log_pdf_standard_normal_at_origin() {
        let g = GaussianCov::new(Vector::zeros(2), &Matrix::identity(2)).unwrap();
        let lp = g.log_pdf(&Vector::zeros(2)).unwrap();
        assert!(approx_eq(lp, -LN_2PI, 1e-12));
    }

    #[test]
    fn precision_and_cov_forms_agree() {
        let mean = Vector::new(vec![0.5, -1.0]);
        let cov = cov2();
        let prec = Cholesky::factor(&cov).unwrap().inverse();
        let gc = GaussianCov::new(mean.clone(), &cov).unwrap();
        let gp = GaussianPrecision::new(mean, prec).unwrap();
        for &pt in &[[0.0, 0.0], [1.0, 2.0], [-3.0, 0.7]] {
            let x = Vector::new(pt.to_vec());
            assert!(approx_eq(
                gc.log_pdf(&x).unwrap(),
                gp.log_pdf(&x).unwrap(),
                1e-9
            ));
        }
    }

    #[test]
    fn cov_samples_recover_moments() {
        let mut r = rng();
        let mean = Vector::new(vec![1.0, -2.0]);
        let cov = cov2();
        let g = GaussianCov::new(mean.clone(), &cov).unwrap();
        let n = 40_000;
        let mut sum = Vector::zeros(2);
        let mut sum_sq = Matrix::zeros(2, 2);
        for _ in 0..n {
            let x = g.sample(&mut r);
            sum.axpy(1.0, &x).unwrap();
            sum_sq.rank1_update(1.0, &x).unwrap();
        }
        let m = sum.scale(1.0 / n as f64);
        for i in 0..2 {
            assert!((m[i] - mean[i]).abs() < 0.03, "mean[{i}]={}", m[i]);
        }
        for i in 0..2 {
            for j in 0..2 {
                let c = sum_sq[(i, j)] / n as f64 - m[i] * m[j];
                assert!((c - cov[(i, j)]).abs() < 0.05, "cov[{i},{j}]={c}");
            }
        }
    }

    #[test]
    fn precision_samples_recover_covariance() {
        let mut r = rng();
        let cov = cov2();
        let prec = Cholesky::factor(&cov).unwrap().inverse();
        let g = GaussianPrecision::new(Vector::zeros(2), prec).unwrap();
        let n = 40_000;
        let mut sum_sq = Matrix::zeros(2, 2);
        for _ in 0..n {
            let x = g.sample(&mut r);
            sum_sq.rank1_update(1.0 / n as f64, &x).unwrap();
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!((sum_sq[(i, j)] - cov[(i, j)]).abs() < 0.05, "cov[{i},{j}]");
            }
        }
    }

    #[test]
    fn covariance_inverts_precision() {
        let cov = cov2();
        let prec = Cholesky::factor(&cov).unwrap().inverse();
        let g = GaussianPrecision::new(Vector::zeros(2), prec).unwrap();
        let back = g.covariance();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(back[(i, j)], cov[(i, j)], 1e-9));
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert!(GaussianCov::new(Vector::zeros(3), &Matrix::identity(2)).is_err());
        let g = GaussianCov::new(Vector::zeros(2), &Matrix::identity(2)).unwrap();
        assert!(g.log_pdf(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn log_pdf_integrates_to_one_grid() {
        // Coarse 2-D grid integration of exp(log_pdf) ≈ 1.
        let g = GaussianCov::new(Vector::zeros(2), &cov2()).unwrap();
        let step = 0.1;
        let mut total = 0.0;
        let mut x = -8.0;
        while x < 8.0 {
            let mut y = -8.0;
            while y < 8.0 {
                let p = g.log_pdf(&Vector::new(vec![x, y])).unwrap().exp();
                total += p * step * step;
                y += step;
            }
            x += step;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral={total}");
    }
}

//! Scalar samplers: standard normal, gamma, and chi-square.
//!
//! Implemented from scratch so the workspace depends only on `rand`'s
//! uniform source: normal via Marsaglia's polar method, gamma via
//! Marsaglia–Tsang squeeze (with the Johnk-style boost for shape < 1),
//! chi-square as a gamma special case.

use rand::Rng;

/// Draws a standard normal `N(0, 1)` variate (Marsaglia polar method).
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws from `Gamma(shape, scale)` with mean `shape * scale`.
///
/// Uses Marsaglia–Tsang (2000) for `shape >= 1` and the standard boost
/// `Gamma(a) = Gamma(a+1) * U^{1/a}` for `shape < 1`.
///
/// # Panics
/// Panics if `shape` or `scale` is not positive (programming error — the
/// model guarantees positive hyperparameters).
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma parameters must be positive: shape={shape}, scale={scale}"
    );
    if shape < 1.0 {
        // Boost: if X ~ Gamma(shape + 1) and U ~ Uniform(0,1),
        // then X * U^(1/shape) ~ Gamma(shape).
        let x = sample_gamma(rng, shape + 1.0, 1.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return scale * x * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_std_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(0.0..1.0);
        let x2 = x * x;
        // Squeeze check first (cheap), then the full log check.
        if u < 1.0 - 0.0331 * x2 * x2 {
            return scale * d * v3;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v3 + v3.ln()) {
            return scale * d * v3;
        }
    }
}

/// Draws from a chi-square distribution with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df` is not positive.
pub fn sample_chi_square<R: Rng + ?Sized>(rng: &mut R, df: f64) -> f64 {
    sample_gamma(rng, df / 2.0, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    fn mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0);
        (m, v)
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| sample_std_normal(&mut r)).collect();
        let (m, v) = mean_var(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn gamma_moments_large_shape() {
        let mut r = rng();
        let (shape, scale) = (4.5, 2.0);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| sample_gamma(&mut r, shape, scale))
            .collect();
        let (m, v) = mean_var(&xs);
        assert!((m - shape * scale).abs() < 0.1, "mean {m}");
        assert!((v - shape * scale * scale).abs() < 0.6, "var {v}");
    }

    #[test]
    fn gamma_moments_small_shape() {
        let mut r = rng();
        let (shape, scale) = (0.3, 1.5);
        let xs: Vec<f64> = (0..80_000)
            .map(|_| sample_gamma(&mut r, shape, scale))
            .collect();
        let (m, _) = mean_var(&xs);
        assert!((m - shape * scale).abs() < 0.02, "mean {m}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn chi_square_mean_is_df() {
        let mut r = rng();
        let df = 7.0;
        let xs: Vec<f64> = (0..50_000).map(|_| sample_chi_square(&mut r, df)).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - df).abs() < 0.1, "mean {m}");
        assert!((v - 2.0 * df).abs() < 0.5, "var {v}");
    }

    #[test]
    #[should_panic(expected = "gamma parameters must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut r = rng();
        let _ = sample_gamma(&mut r, 0.0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(sample_std_normal(&mut a), sample_std_normal(&mut b));
        }
    }
}

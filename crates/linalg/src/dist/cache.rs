//! Per-topic memoization of posterior-predictive Student-t distributions.
//!
//! A collapsed Gibbs sweep evaluates the Normal-Wishart posterior
//! predictive of every topic against every document, but a topic's
//! sufficient statistics only change when a document is reassigned into
//! or out of it. Rebuilding the [`MultivariateT`] — the Cholesky factor
//! of the scale matrix, its log-determinant, and the log-gamma terms of
//! the normalizing constant — per evaluation therefore repeats identical
//! work `O(K)` times per document.
//!
//! [`PredictiveCache`] keeps one slot per topic holding the last
//! predictive built for it. Callers invalidate a slot whenever they
//! mutate that topic's statistics (a dirty-flag scheme: an empty slot
//! *is* the dirty flag) and otherwise reuse the cached distribution.
//! Because a hit returns the exact object a rebuild would produce, a
//! cached sweep is bit-identical to an uncached one.

use crate::dist::student_t::MultivariateT;

/// Memoizes one posterior-predictive [`MultivariateT`] per topic,
/// invalidated when that topic's sufficient statistics change.
///
/// The cache also counts lookups and hits so samplers can report a
/// hit-rate per sweep. A cache built with [`PredictiveCache::disabled`]
/// never stores anything — every lookup rebuilds — which gives
/// benchmarks an "uncached" baseline that exercises the identical code
/// path.
///
/// ```
/// use rheotex_linalg::dist::{MultivariateT, PredictiveCache};
/// use rheotex_linalg::{Matrix, Vector};
///
/// let mut cache = PredictiveCache::new(2);
/// let build = || MultivariateT::new(Vector::zeros(2), &Matrix::identity(2), 4.0);
/// let first = cache.get_or_try_build(0, build)?.clone();
/// let again = cache.get_or_try_build(0, build)?; // served from the slot
/// assert_eq!(
///     first.log_pdf(&Vector::zeros(2))?,
///     again.log_pdf(&Vector::zeros(2))?
/// );
/// assert_eq!((cache.lookups(), cache.hits()), (2, 1));
/// cache.invalidate(0); // topic 0's statistics changed
/// # Ok::<(), rheotex_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PredictiveCache {
    enabled: bool,
    slots: Vec<Option<MultivariateT>>,
    lookups: u64,
    hits: u64,
}

impl PredictiveCache {
    /// An enabled cache with one empty slot per topic.
    #[must_use]
    pub fn new(topics: usize) -> Self {
        Self {
            enabled: true,
            slots: vec![None; topics],
            lookups: 0,
            hits: 0,
        }
    }

    /// A pass-through cache: every lookup rebuilds, nothing is stored.
    /// Useful as a benchmark baseline and for A/B-ing correctness.
    #[must_use]
    pub fn disabled(topics: usize) -> Self {
        Self {
            enabled: false,
            slots: vec![None; topics],
            lookups: 0,
            hits: 0,
        }
    }

    /// Whether lookups may be served from cache.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of topic slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the cache has no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Marks topic `k` dirty: the next lookup for `k` rebuilds.
    /// Call this after any mutation of topic `k`'s sufficient statistics.
    pub fn invalidate(&mut self, k: usize) {
        if let Some(slot) = self.slots.get_mut(k) {
            *slot = None;
        }
    }

    /// Marks every topic dirty (e.g. after a global parameter resample).
    pub fn invalidate_all(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }

    /// Returns the cached predictive for topic `k`, building (and
    /// storing) it with `build` on a miss. `build`'s error propagates
    /// unchanged and leaves the slot empty, so recovery strategies such
    /// as jittered refactorization compose with the cache: whatever
    /// distribution `build` eventually returns is what gets memoized.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns on failure.
    pub fn get_or_try_build<E>(
        &mut self,
        k: usize,
        build: impl FnOnce() -> Result<MultivariateT, E>,
    ) -> Result<&MultivariateT, E> {
        self.lookups += 1;
        if !self.enabled {
            let built = build()?;
            self.slots[k] = Some(built);
            // The slot is only a scratch holder here (so both branches
            // return a reference); a disabled cache never *hits*.
            return Ok(self.slots[k].as_ref().expect("slot just filled"));
        }
        if self.slots[k].is_some() {
            self.hits += 1;
        } else {
            self.slots[k] = Some(build()?);
        }
        Ok(self.slots[k].as_ref().expect("slot filled above"))
    }

    /// Total lookups since construction (or the last [`Self::reset_stats`]).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups served from cache without rebuilding.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hits over lookups, or 0.0 before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Zeroes the hit/lookup counters (cached entries are kept). Engines
    /// call this per sweep to report per-sweep rates.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::normal_wishart::{GaussianStats, NormalWishart};
    use crate::vector::Vector;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn predictive(prior: &NormalWishart, stats: &GaussianStats) -> MultivariateT {
        prior
            .posterior(stats)
            .unwrap()
            .posterior_predictive()
            .unwrap()
    }

    fn rand_vec(rng: &mut ChaCha8Rng, dim: usize, span: f64) -> Vector {
        Vector::new((0..dim).map(|_| rng.gen_range(-span..span)).collect())
    }

    #[test]
    fn hit_returns_identical_distribution() {
        let prior = NormalWishart::vague(3);
        let mut stats = GaussianStats::new(3);
        stats.add(&Vector::new(vec![0.1, 0.2, 0.3])).unwrap();
        stats.add(&Vector::new(vec![-0.4, 0.0, 0.9])).unwrap();

        let mut cache = PredictiveCache::new(1);
        let fresh = predictive(&prior, &stats);
        let cached = cache
            .get_or_try_build(0, || {
                Ok::<_, crate::LinalgError>(predictive(&prior, &stats))
            })
            .unwrap()
            .clone();
        let hit = cache
            .get_or_try_build(0, || {
                Err::<MultivariateT, &'static str>("must not rebuild on a hit")
            })
            .unwrap();
        let x = Vector::new(vec![0.5, -0.5, 0.25]);
        assert_eq!(fresh.log_pdf(&x).unwrap(), cached.log_pdf(&x).unwrap());
        assert_eq!(cached.log_pdf(&x).unwrap(), hit.log_pdf(&x).unwrap());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.lookups(), 2);
    }

    #[test]
    fn cached_predictive_matches_fresh_after_randomized_updates() {
        // The satellite-mandated consistency check: interleave random
        // stat mutations (with invalidation) and lookups, and require
        // the cached predictive to agree with a freshly factored one to
        // 1e-12 at random evaluation points.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let dim = 3;
        let k = 4;
        let prior = NormalWishart::vague(dim);
        let mut stats: Vec<GaussianStats> = (0..k).map(|_| GaussianStats::new(dim)).collect();
        let mut held: Vec<Vec<Vector>> = vec![Vec::new(); k];
        let mut cache = PredictiveCache::new(k);

        for step in 0..400 {
            let kk = rng.gen_range(0..k);
            let remove = !held[kk].is_empty() && rng.gen_bool(0.4);
            if remove {
                let idx = rng.gen_range(0..held[kk].len());
                let x = held[kk].swap_remove(idx);
                stats[kk].remove(&x).unwrap();
            } else {
                let x = rand_vec(&mut rng, dim, 2.0);
                stats[kk].add(&x).unwrap();
                held[kk].push(x);
            }
            cache.invalidate(kk);

            // Probe every topic, not just the mutated one, so stale
            // slots would be caught.
            for topic in 0..k {
                let fresh = predictive(&prior, &stats[topic]);
                let cached = cache
                    .get_or_try_build(topic, || {
                        Ok::<_, crate::LinalgError>(predictive(&prior, &stats[topic]))
                    })
                    .unwrap()
                    .clone();
                let probe = rand_vec(&mut rng, dim, 3.0);
                let a = fresh.log_pdf(&probe).unwrap();
                let b = cached.log_pdf(&probe).unwrap();
                assert!(
                    (a - b).abs() <= 1e-12,
                    "step {step} topic {topic}: fresh {a} vs cached {b}"
                );
            }
        }
        assert!(cache.hits() > 0, "interleaving must produce hits");
        assert!(cache.hit_rate() > 0.5, "most probes should hit");
    }

    #[test]
    fn disabled_cache_always_rebuilds() {
        let prior = NormalWishart::vague(2);
        let stats = GaussianStats::new(2);
        let mut cache = PredictiveCache::disabled(2);
        let mut builds = 0;
        for _ in 0..3 {
            cache
                .get_or_try_build(1, || {
                    builds += 1;
                    Ok::<_, crate::LinalgError>(predictive(&prior, &stats))
                })
                .unwrap();
        }
        assert_eq!(builds, 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.lookups(), 3);
        assert!(!cache.is_enabled());
    }

    #[test]
    fn invalidate_all_forces_rebuild_everywhere() {
        let prior = NormalWishart::vague(2);
        let stats = GaussianStats::new(2);
        let mut cache = PredictiveCache::new(3);
        for topic in 0..3 {
            cache
                .get_or_try_build(topic, || {
                    Ok::<_, crate::LinalgError>(predictive(&prior, &stats))
                })
                .unwrap();
        }
        cache.invalidate_all();
        let mut builds = 0;
        for topic in 0..3 {
            cache
                .get_or_try_build(topic, || {
                    builds += 1;
                    Ok::<_, crate::LinalgError>(predictive(&prior, &stats))
                })
                .unwrap();
        }
        assert_eq!(builds, 3);
    }

    #[test]
    fn build_errors_propagate_and_leave_slot_dirty() {
        let prior = NormalWishart::vague(2);
        let stats = GaussianStats::new(2);
        let mut cache = PredictiveCache::new(1);
        let err = cache.get_or_try_build(0, || Err::<MultivariateT, _>("boom"));
        assert_eq!(err.err(), Some("boom"));
        // The failed build must not have poisoned the slot: the next
        // (successful) build is stored and subsequently hits.
        cache
            .get_or_try_build(0, || Ok::<_, &'static str>(predictive(&prior, &stats)))
            .unwrap();
        cache
            .get_or_try_build(0, || Err::<MultivariateT, &'static str>("must hit"))
            .unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn reset_stats_zeroes_counters_but_keeps_entries() {
        let prior = NormalWishart::vague(2);
        let stats = GaussianStats::new(2);
        let mut cache = PredictiveCache::new(1);
        cache
            .get_or_try_build(0, || {
                Ok::<_, crate::LinalgError>(predictive(&prior, &stats))
            })
            .unwrap();
        cache.reset_stats();
        assert_eq!((cache.lookups(), cache.hits()), (0, 0));
        cache
            .get_or_try_build(0, || Err::<MultivariateT, &'static str>("must hit"))
            .unwrap();
        assert_eq!((cache.lookups(), cache.hits()), (1, 1));
        assert!((cache.hit_rate() - 1.0).abs() < f64::EPSILON);
    }
}

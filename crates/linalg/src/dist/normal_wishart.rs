//! The Normal-Wishart conjugate prior and its sufficient statistics.
//!
//! This is Eq. (4) of the paper. Each Gaussian topic component `(μ_k, Λ_k)`
//! carries a `NW(μ₀, β, ν, S)` prior; during a Gibbs sweep the recipes
//! currently assigned to topic `k` form a [`GaussianStats`] accumulator, the
//! conjugate [`NormalWishart::posterior`] is computed in closed form, and
//! new topic parameters are drawn with [`NormalWishart::sample`]:
//!
//! ```text
//! ν_c = ν + n,   β_c = β + n,   μ_c = (β μ₀ + n x̄) / (β + n)
//! S_c⁻¹ = S⁻¹ + Σ (x−x̄)(x−x̄)ᵀ + (nβ)/(n+β) (x̄−μ₀)(x̄−μ₀)ᵀ
//! Λ_k ~ W(ν_c, S_c),   μ_k ~ N(μ_c, (β_c Λ_k)⁻¹)
//! ```
//!
//! The prior is stored via `S⁻¹` (the *inverse* scale) so the update above
//! is purely additive. [`NormalWishart::posterior_predictive`] produces the
//! multivariate Student-t used by the fully-collapsed sampler variant.

use crate::cholesky::{Cholesky, Jitter};
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

use super::gaussian::GaussianPrecision;
use super::student_t::MultivariateT;
use super::wishart::Wishart;

/// Exactly reversible sufficient statistics of a set of vectors: count,
/// running sum, and raw scatter `Σ x xᵀ`.
///
/// Gibbs sampling constantly moves one recipe between topics, so the
/// accumulator supports [`GaussianStats::remove`] as the exact inverse of
/// [`GaussianStats::add`]. The raw-moment representation (rather than the
/// centered Welford form) makes removal exact up to floating-point
/// commutativity; concentrations enter as `-log(x)` values of magnitude
/// 1–10, far from the cancellation regime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianStats {
    n: usize,
    sum: Vector,
    raw_scatter: Matrix,
}

impl GaussianStats {
    /// Empty accumulator for `dim`-dimensional observations.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            n: 0,
            sum: Vector::zeros(dim),
            raw_scatter: Matrix::zeros(dim, dim),
        }
    }

    /// Dimension of the observations.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Number of accumulated observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.n
    }

    /// Adds an observation.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] for wrong dimension.
    pub fn add(&mut self, x: &Vector) -> Result<()> {
        self.sum.axpy(1.0, x)?;
        self.raw_scatter.rank1_update(1.0, x)?;
        self.n += 1;
        Ok(())
    }

    /// Removes a previously added observation (exact inverse of `add`).
    ///
    /// # Errors
    /// [`LinalgError::InvalidParameter`] if the accumulator is empty;
    /// [`LinalgError::ShapeMismatch`] for wrong dimension.
    pub fn remove(&mut self, x: &Vector) -> Result<()> {
        if self.n == 0 {
            return Err(LinalgError::InvalidParameter {
                what: "remove from empty GaussianStats".to_string(),
            });
        }
        self.sum.axpy(-1.0, x)?;
        self.raw_scatter.rank1_update(-1.0, x)?;
        self.n -= 1;
        Ok(())
    }

    /// Sample mean `x̄`, or the zero vector when empty.
    #[must_use]
    pub fn mean(&self) -> Vector {
        if self.n == 0 {
            Vector::zeros(self.dim())
        } else {
            self.sum.scale(1.0 / self.n as f64)
        }
    }

    /// Centered scatter `Σ (x − x̄)(x − x̄)ᵀ = Σ x xᵀ − n x̄ x̄ᵀ`.
    #[must_use]
    pub fn centered_scatter(&self) -> Matrix {
        let mut s = self.raw_scatter.clone();
        if self.n > 0 {
            let mean = self.mean();
            s.rank1_update(-(self.n as f64), &mean)
                .expect("square by construction");
        }
        s.symmetrize().expect("square by construction");
        s
    }

    /// Resets to the empty state.
    pub fn clear(&mut self) {
        self.n = 0;
        self.sum = Vector::zeros(self.dim());
        self.raw_scatter = Matrix::zeros(self.dim(), self.dim());
    }
}

/// Normal-Wishart distribution `NW(μ₀, β, ν, S)`; `S` is stored through its
/// inverse for additive posterior updates.
///
/// # Examples
/// ```
/// use rheotex_linalg::dist::{GaussianStats, NormalWishart};
/// use rheotex_linalg::Vector;
///
/// let prior = NormalWishart::vague(Vector::zeros(2), 1.0, 1.0).unwrap();
/// let mut stats = GaussianStats::new(2);
/// stats.add(&Vector::new(vec![3.0, -1.0])).unwrap();
/// stats.add(&Vector::new(vec![3.2, -0.8])).unwrap();
/// let post = prior.posterior(&stats).unwrap();
/// assert_eq!(post.nu(), prior.nu() + 2.0);
/// // The posterior mean moves toward the data.
/// assert!(post.mu0()[0] > 1.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormalWishart {
    mu0: Vector,
    beta: f64,
    nu: f64,
    scale_inv: Matrix,
}

impl NormalWishart {
    /// Creates the prior. Requires `beta > 0`, `nu > dim − 1`, and
    /// `scale_inv` SPD of matching dimension.
    ///
    /// # Errors
    /// [`LinalgError::InvalidParameter`] / shape / definiteness failures.
    pub fn new(mu0: Vector, beta: f64, nu: f64, scale_inv: Matrix) -> Result<Self> {
        let d = mu0.len();
        if scale_inv.shape() != (d, d) {
            return Err(LinalgError::ShapeMismatch {
                op: "NormalWishart::new",
                lhs: (d, 1),
                rhs: scale_inv.shape(),
            });
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(LinalgError::InvalidParameter {
                what: format!("NW beta {beta} must be positive"),
            });
        }
        if nu <= d as f64 - 1.0 {
            return Err(LinalgError::InvalidParameter {
                what: format!("NW nu {nu} must exceed dim-1 = {}", d - 1),
            });
        }
        // Validate SPD up front so sampling cannot fail later.
        Cholesky::factor(&scale_inv)?;
        Ok(Self {
            mu0,
            beta,
            nu,
            scale_inv,
        })
    }

    /// A weakly-informative prior centred at `mu0`: `β`, `ν = dim + 2`, and
    /// inverse scale `ν·s²·I` so that `E[Λ]⁻¹ ≈ s² I` (prior covariance
    /// scale `s`).
    ///
    /// # Errors
    /// Propagates [`Self::new`] validation.
    pub fn vague(mu0: Vector, beta: f64, prior_std: f64) -> Result<Self> {
        let d = mu0.len();
        let nu = d as f64 + 2.0;
        let scale_inv = Matrix::scaled_identity(d, nu * prior_std * prior_std);
        Self::new(mu0, beta, nu, scale_inv)
    }

    /// Dimension `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mu0.len()
    }

    /// Prior mean `μ₀`.
    #[must_use]
    pub fn mu0(&self) -> &Vector {
        &self.mu0
    }

    /// Mean-precision scaling `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Degrees of freedom `ν`.
    #[must_use]
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Inverse scale matrix `S⁻¹`.
    #[must_use]
    pub fn scale_inv(&self) -> &Matrix {
        &self.scale_inv
    }

    /// Conjugate posterior after observing the data summarized in `stats`
    /// (Eq. (4) of the paper).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if dimensions disagree.
    pub fn posterior(&self, stats: &GaussianStats) -> Result<Self> {
        if stats.dim() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "nw_posterior",
                lhs: (self.dim(), 1),
                rhs: (stats.dim(), 1),
            });
        }
        let n = stats.count() as f64;
        if stats.count() == 0 {
            return Ok(self.clone());
        }
        let xbar = stats.mean();
        let beta_c = self.beta + n;
        let nu_c = self.nu + n;
        // μ_c = (β μ₀ + n x̄) / (β + n)
        let mut mu_c = self.mu0.scale(self.beta);
        mu_c.axpy(n, &xbar)?;
        mu_c.scale_mut(1.0 / beta_c);
        // S_c⁻¹ = S⁻¹ + centered scatter + (nβ)/(n+β)(x̄−μ₀)(x̄−μ₀)ᵀ
        let mut scale_inv_c = self.scale_inv.add(&stats.centered_scatter())?;
        let dev = xbar.sub(&self.mu0)?;
        scale_inv_c.rank1_update(n * self.beta / (n + self.beta), &dev)?;
        scale_inv_c.symmetrize()?;
        Ok(Self {
            mu0: mu_c,
            beta: beta_c,
            nu: nu_c,
            scale_inv: scale_inv_c,
        })
    }

    /// Draws topic parameters `(μ, Λ)`: `Λ ~ W(ν, S)` then
    /// `μ ~ N(μ₀, (β Λ)⁻¹)`. Returns them packaged as a
    /// [`GaussianPrecision`] ready to score observations.
    ///
    /// # Errors
    /// Propagates factorization failures (cannot occur for a validated
    /// distribution with finite data).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<GaussianPrecision> {
        let scale = Cholesky::factor(&self.scale_inv)?.inverse();
        self.sample_with_scale(rng, &scale)
    }

    /// Like [`Self::sample`], but recovers from a numerically
    /// non-positive-definite inverse scale (e.g. an accumulated scatter
    /// matrix degraded by cancellation) via the shared
    /// [`Cholesky::factor_with_jitter`] ridge-retry policy.
    ///
    /// The factorization happens *before* any randomness is consumed, so a
    /// draw that needs no jitter consumes exactly the same RNG stream as
    /// [`Self::sample`] — recovery never perturbs a healthy run. Returns
    /// the draw together with the [`Jitter`] describing the recovery.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] when every jitter retry fails.
    pub fn sample_recovering<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_attempts: usize,
    ) -> Result<(GaussianPrecision, Jitter)> {
        let (factor, jitter) = Cholesky::factor_with_jitter(&self.scale_inv, max_attempts)?;
        let draw = self.sample_with_scale(rng, &factor.inverse())?;
        Ok((draw, jitter))
    }

    /// Bartlett construction given the already-inverted scale matrix `S`.
    fn sample_with_scale<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scale: &Matrix,
    ) -> Result<GaussianPrecision> {
        let wishart = Wishart::new(scale, self.nu)?;
        let lambda = wishart.sample(rng);
        let mean_prec = lambda.scale(self.beta);
        let mean_dist = GaussianPrecision::new(self.mu0.clone(), mean_prec)?;
        let mu = mean_dist.sample(rng);
        GaussianPrecision::new(mu, lambda)
    }

    /// Expected topic parameters `(E[μ], E[Λ]) = (μ₀, ν S)` as a
    /// [`GaussianPrecision`] — the Rao-Blackwellized point estimate used for
    /// reporting topics after convergence.
    ///
    /// # Errors
    /// Propagates factorization failures.
    pub fn expected_gaussian(&self) -> Result<GaussianPrecision> {
        let scale = Cholesky::factor(&self.scale_inv)?.inverse();
        GaussianPrecision::new(self.mu0.clone(), scale.scale(self.nu))
    }

    /// Posterior-predictive distribution of a new observation with the
    /// Gaussian parameters integrated out:
    /// `t_{ν−D+1}(μ₀, S⁻¹ (β+1)/(β (ν−D+1)))`.
    ///
    /// # Errors
    /// [`LinalgError::InvalidParameter`] when `ν − D + 1 ≤ 0`.
    pub fn posterior_predictive(&self) -> Result<MultivariateT> {
        let d = self.dim() as f64;
        let dof = self.nu - d + 1.0;
        if dof <= 0.0 {
            return Err(LinalgError::InvalidParameter {
                what: format!("predictive dof {dof} must be positive"),
            });
        }
        let factor = (self.beta + 1.0) / (self.beta * dof);
        let shape = self.scale_inv.scale(factor);
        MultivariateT::new(self.mu0.clone(), &shape, dof)
    }

    /// Like [`Self::posterior_predictive`], but recovers from a
    /// numerically non-positive-definite shape matrix via the shared
    /// [`Cholesky::factor_with_jitter`] ridge-retry policy: the returned
    /// Student-t is built from the jittered shape `S⁻¹·c + εI` that
    /// finally factored.
    ///
    /// # Errors
    /// [`LinalgError::InvalidParameter`] when `ν − D + 1 ≤ 0`;
    /// [`LinalgError::NotPositiveDefinite`] when every jitter retry fails.
    pub fn posterior_predictive_recovering(
        &self,
        max_attempts: usize,
    ) -> Result<(MultivariateT, Jitter)> {
        let d = self.dim() as f64;
        let dof = self.nu - d + 1.0;
        if dof <= 0.0 {
            return Err(LinalgError::InvalidParameter {
                what: format!("predictive dof {dof} must be positive"),
            });
        }
        let factor = (self.beta + 1.0) / (self.beta * dof);
        let mut shape = self.scale_inv.scale(factor);
        let (_, jitter) = Cholesky::factor_with_jitter(&shape, max_attempts)?;
        if jitter.attempts > 0 {
            for i in 0..shape.nrows() {
                shape[(i, i)] += jitter.epsilon;
            }
        }
        let t = MultivariateT::new(self.mu0.clone(), &shape, dof)?;
        Ok((t, jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(21)
    }

    fn obs() -> Vec<Vector> {
        vec![
            Vector::new(vec![1.0, 2.0]),
            Vector::new(vec![1.5, 1.0]),
            Vector::new(vec![0.5, 2.5]),
            Vector::new(vec![2.0, 3.0]),
        ]
    }

    #[test]
    fn stats_add_remove_roundtrip() {
        let mut s = GaussianStats::new(2);
        for x in obs() {
            s.add(&x).unwrap();
        }
        let mean_before = s.mean();
        let scatter_before = s.centered_scatter();

        let extra = Vector::new(vec![-3.0, 7.0]);
        s.add(&extra).unwrap();
        s.remove(&extra).unwrap();

        assert_eq!(s.count(), 4);
        for i in 0..2 {
            assert!(approx_eq(s.mean()[i], mean_before[i], 1e-10));
            for j in 0..2 {
                assert!(approx_eq(
                    s.centered_scatter()[(i, j)],
                    scatter_before[(i, j)],
                    1e-9
                ));
            }
        }
    }

    #[test]
    fn stats_mean_and_scatter_match_direct() {
        let mut s = GaussianStats::new(2);
        let data = obs();
        for x in &data {
            s.add(x).unwrap();
        }
        // Direct mean
        let n = data.len() as f64;
        let mut mean = Vector::zeros(2);
        for x in &data {
            mean.axpy(1.0 / n, x).unwrap();
        }
        for i in 0..2 {
            assert!(approx_eq(s.mean()[i], mean[i], 1e-12));
        }
        // Direct centered scatter
        let mut scatter = Matrix::zeros(2, 2);
        for x in &data {
            let d = x.sub(&mean).unwrap();
            scatter.rank1_update(1.0, &d).unwrap();
        }
        let got = s.centered_scatter();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(got[(i, j)], scatter[(i, j)], 1e-10));
            }
        }
    }

    #[test]
    fn stats_remove_from_empty_errors() {
        let mut s = GaussianStats::new(2);
        assert!(s.remove(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn posterior_with_no_data_is_prior() {
        let prior = NormalWishart::vague(Vector::zeros(2), 1.0, 1.0).unwrap();
        let post = prior.posterior(&GaussianStats::new(2)).unwrap();
        assert_eq!(post.beta(), prior.beta());
        assert_eq!(post.nu(), prior.nu());
    }

    #[test]
    fn posterior_updates_follow_formulas() {
        let prior = NormalWishart::vague(Vector::zeros(2), 2.0, 1.0).unwrap();
        let mut s = GaussianStats::new(2);
        for x in obs() {
            s.add(&x).unwrap();
        }
        let post = prior.posterior(&s).unwrap();
        assert_eq!(post.beta(), 6.0); // 2 + 4
        assert_eq!(post.nu(), prior.nu() + 4.0);
        // μ_c = (2·0 + 4·x̄)/6 = (2/3) x̄
        let xbar = s.mean();
        for i in 0..2 {
            assert!(approx_eq(post.mu0()[i], 4.0 * xbar[i] / 6.0, 1e-12));
        }
    }

    #[test]
    fn posterior_mean_concentrates_on_truth() {
        // Feed many samples from a known Gaussian; the posterior expected
        // mean must approach the true mean and E[Λ]⁻¹ the true covariance.
        let mut r = rng();
        let truth_mean = Vector::new(vec![3.0, -1.0]);
        let truth_cov = Matrix::from_rows_vec(2, 2, vec![0.5, 0.2, 0.2, 0.8]).unwrap();
        let g = super::super::gaussian::GaussianCov::new(truth_mean.clone(), &truth_cov).unwrap();
        let prior = NormalWishart::vague(Vector::zeros(2), 1.0, 1.0).unwrap();
        let mut s = GaussianStats::new(2);
        for _ in 0..5000 {
            s.add(&g.sample(&mut r)).unwrap();
        }
        let post = prior.posterior(&s).unwrap();
        let expected = post.expected_gaussian().unwrap();
        for i in 0..2 {
            assert!(
                (expected.mean()[i] - truth_mean[i]).abs() < 0.05,
                "mean[{i}]"
            );
        }
        let cov = expected.covariance();
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (cov[(i, j)] - truth_cov[(i, j)]).abs() < 0.06,
                    "cov[{i},{j}]: {} vs {}",
                    cov[(i, j)],
                    truth_cov[(i, j)]
                );
            }
        }
    }

    #[test]
    fn sampled_parameters_concentrate_with_data() {
        let mut r = rng();
        let prior = NormalWishart::vague(Vector::zeros(1), 1.0, 1.0).unwrap();
        let mut s = GaussianStats::new(1);
        for _ in 0..2000 {
            // Data from N(5, 0.25)
            let x = 5.0 + 0.5 * super::super::scalar::sample_std_normal(&mut r);
            s.add(&Vector::new(vec![x])).unwrap();
        }
        let post = prior.posterior(&s).unwrap();
        let draw = post.sample(&mut r).unwrap();
        assert!((draw.mean()[0] - 5.0).abs() < 0.2);
        // Precision should be near 1/0.25 = 4.
        assert!((draw.precision()[(0, 0)] - 4.0).abs() < 1.0);
    }

    #[test]
    fn predictive_is_proper_student_t() {
        let prior = NormalWishart::vague(Vector::zeros(2), 1.0, 1.0).unwrap();
        let t = prior.posterior_predictive().unwrap();
        assert_eq!(t.dim(), 2);
        assert!(approx_eq(t.dof(), prior.nu() - 2.0 + 1.0, 1e-12));
    }

    #[test]
    fn sample_recovering_matches_sample_on_healthy_prior() {
        // For an SPD inverse scale the jittered path must consume the same
        // RNG stream and produce bit-identical parameters.
        let prior = NormalWishart::vague(Vector::new(vec![1.0, -2.0]), 2.0, 0.7).unwrap();
        let mut r1 = rng();
        let mut r2 = rng();
        let clean = prior.sample(&mut r1).unwrap();
        let (recovered, jitter) = prior.sample_recovering(&mut r2, 8).unwrap();
        assert_eq!(jitter.attempts, 0);
        assert_eq!(jitter.epsilon, 0.0);
        for i in 0..2 {
            assert_eq!(clean.mean()[i], recovered.mean()[i]);
            for j in 0..2 {
                assert_eq!(clean.precision()[(i, j)], recovered.precision()[(i, j)]);
            }
        }
        // And the generators end in the same state.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    /// Builds a NW whose `scale_inv` is singular (rank-deficient), which
    /// `new()` would reject: serialize a valid prior and swap the matrix
    /// in the JSON — exactly the corruption a degraded scatter produces.
    fn corrupted_nw() -> NormalWishart {
        let valid = NormalWishart::vague(Vector::zeros(2), 1.0, 1.0).unwrap();
        let mut v: serde_json::Value = serde_json::to_value(&valid).unwrap();
        let singular: serde_json::Value =
            serde_json::to_value(Matrix::from_rows_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap())
                .unwrap();
        v["scale_inv"] = singular;
        serde_json::from_value(v).unwrap()
    }

    #[test]
    fn sample_recovering_rescues_singular_scale() {
        let nw = corrupted_nw();
        let mut r = rng();
        assert!(nw.sample(&mut r).is_err());
        let (draw, jitter) = nw.sample_recovering(&mut r, 8).unwrap();
        assert!(jitter.attempts > 0);
        assert!(jitter.epsilon > 0.0);
        assert_eq!(draw.mean().len(), 2);
        // Exhausted attempts still yield the typed error, never a panic.
        assert!(matches!(
            nw.sample_recovering(&mut r, 0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn predictive_recovering_matches_clean_path_and_rescues() {
        let prior = NormalWishart::vague(Vector::zeros(2), 1.0, 1.0).unwrap();
        let (t, jitter) = prior.posterior_predictive_recovering(8).unwrap();
        assert_eq!(jitter.attempts, 0);
        assert_eq!(t.dof(), prior.posterior_predictive().unwrap().dof());

        let nw = corrupted_nw();
        assert!(nw.posterior_predictive().is_err());
        let (t, jitter) = nw.posterior_predictive_recovering(8).unwrap();
        assert!(jitter.attempts > 0);
        assert_eq!(t.dim(), 2);
    }

    #[test]
    fn validation_rejects_bad_hyperparameters() {
        assert!(NormalWishart::new(Vector::zeros(2), 0.0, 4.0, Matrix::identity(2)).is_err());
        assert!(NormalWishart::new(Vector::zeros(2), 1.0, 0.5, Matrix::identity(2)).is_err());
        assert!(NormalWishart::new(Vector::zeros(2), 1.0, 4.0, Matrix::identity(3)).is_err());
    }
}

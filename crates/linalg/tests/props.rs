//! Property-based tests for the numerical substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_linalg::dist::{
    sample_categorical, sample_categorical_log, sample_dirichlet, GaussianStats, NormalWishart,
};
use rheotex_linalg::special::{ln_gamma, log_sum_exp};
use rheotex_linalg::{Cholesky, Lu, Matrix, Vector};

/// Strategy: a random SPD matrix of dimension `dim` built as `L Lᵀ + εI`.
fn spd(dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, dim * dim).prop_map(move |data| {
        let a = Matrix::from_rows_vec(dim, dim, data).unwrap();
        let mut s = a.matmul(&a.transpose()).unwrap();
        for i in 0..dim {
            s[(i, i)] += 0.5 + dim as f64 * 0.1;
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_solve_is_inverse_of_matvec(m in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let ch = Cholesky::factor(&m).unwrap();
        let b = Vector::new(b);
        let x = ch.solve(&b).unwrap();
        let back = m.matvec(&x).unwrap();
        for i in 0..4 {
            prop_assert!((back[i] - b[i]).abs() < 1e-7, "i={i}: {} vs {}", back[i], b[i]);
        }
    }

    #[test]
    fn cholesky_and_lu_agree_on_log_det(m in spd(3)) {
        let ch = Cholesky::factor(&m).unwrap();
        let lu = Lu::factor(&m).unwrap();
        let (lu_log, sign) = lu.log_abs_det();
        prop_assert_eq!(sign, 1.0);
        prop_assert!((ch.log_det() - lu_log).abs() < 1e-8);
    }

    #[test]
    fn mahalanobis_is_nonnegative(m in spd(3), v in proptest::collection::vec(-5.0..5.0f64, 3)) {
        let ch = Cholesky::factor(&m).unwrap();
        let v = Vector::new(v);
        prop_assert!(ch.mahalanobis_sq(&v).unwrap() >= 0.0);
    }

    #[test]
    fn categorical_respects_support(weights in proptest::collection::vec(0.0..10.0f64, 1..12), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let i = sample_categorical(&mut rng, &weights).unwrap();
        prop_assert!(i < weights.len());
        prop_assert!(weights[i] > 0.0, "sampled a zero-weight index");
    }

    #[test]
    fn categorical_log_matches_support(logits in proptest::collection::vec(-50.0..50.0f64, 1..12), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let i = sample_categorical_log(&mut rng, &logits).unwrap();
        prop_assert!(i < logits.len());
    }

    #[test]
    fn dirichlet_samples_live_on_simplex(alphas in proptest::collection::vec(0.05..8.0f64, 2..8), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p = sample_dirichlet(&mut rng, &alphas).unwrap();
        prop_assert!((p.sum() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn log_sum_exp_dominates_max(xs in proptest::collection::vec(-400.0..400.0f64, 1..10)) {
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = log_sum_exp(&xs);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.1..50.0f64) {
        // ln Γ(x+1) = ln Γ(x) + ln x
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn nw_posterior_is_valid_distribution(
        data in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 2), 0..20),
        beta in 0.1..5.0f64,
    ) {
        let prior = NormalWishart::vague(Vector::zeros(2), beta, 1.0).unwrap();
        let mut stats = GaussianStats::new(2);
        for x in &data {
            stats.add(&Vector::new(x.clone())).unwrap();
        }
        let post = prior.posterior(&stats).unwrap();
        // Posterior parameters remain in their domains whatever the data.
        prop_assert!(post.beta() > 0.0);
        prop_assert!(post.nu() > 1.0);
        // And sampling from it still works (SPD posterior scale).
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = post.sample(&mut rng).unwrap();
        prop_assert!(g.log_pdf(&Vector::zeros(2)).unwrap().is_finite());
    }

    #[test]
    fn stats_mean_is_translation_equivariant(
        data in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 2), 1..15),
        shift in -10.0..10.0f64,
    ) {
        let mut a = GaussianStats::new(2);
        let mut b = GaussianStats::new(2);
        for x in &data {
            a.add(&Vector::new(x.clone())).unwrap();
            b.add(&Vector::new(x.iter().map(|v| v + shift).collect())).unwrap();
        }
        for i in 0..2 {
            prop_assert!((b.mean()[i] - a.mean()[i] - shift).abs() < 1e-9);
        }
        // Centered scatter is translation-invariant.
        let sa = a.centered_scatter();
        let sb = b.centered_scatter();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((sa[(i, j)] - sb[(i, j)]).abs() < 1e-6,
                    "scatter changed under translation");
            }
        }
    }
}

//! Gibbs sweep throughput of the joint topic model, as a function of
//! corpus size and topic count — the cost driver of Table II(a) — plus
//! the kernel comparison behind `BENCH_gibbs.json`: serial vs.
//! deterministic parallel vs. sparse bucket sweeps vs. the composed
//! sparse-parallel kernel vs. the alias-table MH kernel (the sparse
//! and alias rows scanned across K ∈ {8, 32, 128} on a
//! wide-vocabulary LDA corpus, the chunked kernels additionally across
//! threads ∈ {0, 2, 4}), and cached vs. uncached Gaussian predictives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{FitOptions, GibbsKernel, JointConfig, JointTopicModel, ModelDoc};
use rheotex_corpus::features::gel_info_vector;
use rheotex_linalg::Vector;
use std::hint::black_box;

fn synth_docs(n: usize) -> Vec<ModelDoc> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            use rand::Rng;
            let band = i % 4;
            let conc = 0.005 * (band + 1) as f64 * rng.gen_range(0.9..1.1);
            let gels = [conc, 0.0, 0.0];
            let terms: Vec<usize> = (0..3).map(|t| (band * 3 + t) % 12).collect();
            ModelDoc::new(
                i as u64,
                terms,
                gel_info_vector(&gels),
                Vector::full(6, 9.2),
            )
        })
        .collect()
}

fn config(k: usize, sweeps: usize) -> JointConfig {
    JointConfig {
        n_topics: k,
        sweeps,
        burn_in: sweeps / 2,
        ..JointConfig::paper_default(12)
    }
}

fn bench_fit_by_docs(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_fit_10_sweeps_by_docs");
    group.sample_size(10);
    for n in [200usize, 800] {
        let docs = synth_docs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            let model = JointTopicModel::new(config(8, 10)).unwrap();
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(6);
                model
                    .fit_with(&mut rng, black_box(docs), FitOptions::new())
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_fit_by_topics(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_fit_10_sweeps_by_topics");
    group.sample_size(10);
    let docs = synth_docs(400);
    for k in [4usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let model = JointTopicModel::new(config(k, 10)).unwrap();
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                model
                    .fit_with(&mut rng, black_box(&docs), FitOptions::new())
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// The hot-path kernels against one mid-size corpus: the historical
/// serial joint sweep, the deterministic chunked parallel sweep, the
/// sparse bucket sweep, and the GMM sweep with the per-topic Student-t
/// predictive cache on vs. off (cached and uncached fits are
/// bit-identical; only speed differs), plus the LDA scan over topic
/// counts: dense serial vs. sparse vs. sparse-parallel vs. alias
/// across threads.
fn bench_sweep_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_sweep_kernels");
    group.sample_size(10);
    let docs = synth_docs(400);

    let joint = JointTopicModel::new(config(8, 10)).unwrap();
    group.bench_function("sweep_serial", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            joint
                .fit_with(&mut rng, black_box(&docs), FitOptions::new())
                .unwrap()
        });
    });
    group.bench_function("sweep_parallel", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            joint
                .fit_with(&mut rng, black_box(&docs), FitOptions::new().threads(4))
                .unwrap()
        });
    });
    group.bench_function("sweep_sparse", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            joint
                .fit_with(
                    &mut rng,
                    black_box(&docs),
                    FitOptions::new().kernel(GibbsKernel::Sparse),
                )
                .unwrap()
        });
    });

    // The sparse kernel's own scaling regime: a wide vocabulary and K up
    // to 128, where the dense O(K)-per-token scan falls behind the
    // O(s + r + q) bucket draw (LDA isolates the token sweep — no
    // Gaussian phases diluting the comparison).
    let wide_docs: Vec<ModelDoc> = {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        (0..600)
            .map(|i| {
                use rand::Rng;
                let window = (i * 37) % 512;
                let terms: Vec<usize> = (0..8)
                    .map(|_| (window + rng.gen_range(0..16)) % 512)
                    .collect();
                ModelDoc::new(
                    i as u64,
                    terms,
                    gel_info_vector(&[0.01, 0.0, 0.0]),
                    Vector::full(6, 9.2),
                )
            })
            .collect()
    };
    for k in [8usize, 32, 128] {
        let lda = LdaModel::new(LdaConfig {
            n_topics: k,
            vocab_size: 512,
            alpha: 0.1,
            gamma: 0.05,
            sweeps: 10,
            burn_in: 5,
        })
        .unwrap();
        group.bench_with_input(BenchmarkId::new("lda_serial", k), &k, |b, _| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                lda.fit_with(&mut rng, black_box(&wide_docs), FitOptions::new())
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("lda_sparse", k), &k, |b, _| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                lda.fit_with(
                    &mut rng,
                    black_box(&wide_docs),
                    FitOptions::new().kernel(GibbsKernel::Sparse),
                )
                .unwrap()
            });
        });
        // The composed kernel across the thread grid (0 = one worker on
        // a pool, exposing the chunking overhead alone).
        for t in [0usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new("lda_sparse_parallel", format!("{k}_t{t}")),
                &k,
                |b, _| {
                    b.iter(|| {
                        let mut rng = ChaCha8Rng::seed_from_u64(9);
                        lda.fit_with(
                            &mut rng,
                            black_box(&wide_docs),
                            FitOptions::new()
                                .kernel(GibbsKernel::SparseParallel)
                                .threads(t),
                        )
                        .unwrap()
                    });
                },
            );
        }
        // The alias-table MH kernel on the same grid: the per-sweep
        // table rebuild is the fixed cost the O(1) draws amortize.
        for t in [0usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new("lda_alias", format!("{k}_t{t}")),
                &k,
                |b, _| {
                    b.iter(|| {
                        let mut rng = ChaCha8Rng::seed_from_u64(9);
                        lda.fit_with(
                            &mut rng,
                            black_box(&wide_docs),
                            FitOptions::new().kernel(GibbsKernel::Alias).threads(t),
                        )
                        .unwrap()
                    });
                },
            );
        }
    }

    let mut gmm_cfg = GmmConfig::new(8);
    gmm_cfg.sweeps = 10;
    let gmm = GmmModel::new(gmm_cfg).unwrap();
    group.bench_function("sweep_cached", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            gmm.fit_with(&mut rng, black_box(&docs), FitOptions::new())
                .unwrap()
        });
    });
    group.bench_function("sweep_uncached", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            gmm.fit_with(
                &mut rng,
                black_box(&docs),
                FitOptions::new().predictive_cache(false),
            )
            .unwrap()
        });
    });
    group.finish();
}

/// Instrumentation overhead: the same fit driven (a) with no observer,
/// (b) with a disabled handle (must be indistinguishable from (a) — the
/// no-op recorder is a null check), and (c) with a live in-memory sink
/// (the worst realistic case: every sweep computes stats and records an
/// event).
fn bench_observer_overhead(c: &mut Criterion) {
    use rheotex_obs::{MemorySink, Obs};

    let mut group = c.benchmark_group("joint_fit_observer_overhead");
    group.sample_size(10);
    let docs = synth_docs(400);
    let model = JointTopicModel::new(config(8, 10)).unwrap();

    group.bench_function("plain_fit", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            model
                .fit_with(&mut rng, black_box(&docs), FitOptions::new())
                .unwrap()
        });
    });
    group.bench_function("disabled_obs", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            let mut obs = Obs::disabled();
            model
                .fit_with(
                    &mut rng,
                    black_box(&docs),
                    FitOptions::new().observer(&mut obs),
                )
                .unwrap()
        });
    });
    group.bench_function("memory_sink_obs", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            let sink = MemorySink::default();
            let mut obs = Obs::with_sinks(vec![Box::new(sink)]);
            model
                .fit_with(
                    &mut rng,
                    black_box(&docs),
                    FitOptions::new().observer(&mut obs),
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_by_docs,
    bench_fit_by_topics,
    bench_sweep_kernels,
    bench_observer_overhead
);
criterion_main!(benches);

//! Gibbs sweep throughput of the joint topic model, as a function of
//! corpus size and topic count — the cost driver of Table II(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::{JointConfig, JointTopicModel, ModelDoc};
use rheotex_corpus::features::gel_info_vector;
use rheotex_linalg::Vector;
use std::hint::black_box;

fn synth_docs(n: usize) -> Vec<ModelDoc> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            use rand::Rng;
            let band = i % 4;
            let conc = 0.005 * (band + 1) as f64 * rng.gen_range(0.9..1.1);
            let gels = [conc, 0.0, 0.0];
            let terms: Vec<usize> = (0..3).map(|t| (band * 3 + t) % 12).collect();
            ModelDoc::new(
                i as u64,
                terms,
                gel_info_vector(&gels),
                Vector::full(6, 9.2),
            )
        })
        .collect()
}

fn config(k: usize, sweeps: usize) -> JointConfig {
    JointConfig {
        n_topics: k,
        sweeps,
        burn_in: sweeps / 2,
        ..JointConfig::paper_default(12)
    }
}

fn bench_fit_by_docs(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_fit_10_sweeps_by_docs");
    group.sample_size(10);
    for n in [200usize, 800] {
        let docs = synth_docs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            let model = JointTopicModel::new(config(8, 10)).unwrap();
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(6);
                model.fit(&mut rng, black_box(docs)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_fit_by_topics(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_fit_10_sweeps_by_topics");
    group.sample_size(10);
    let docs = synth_docs(400);
    for k in [4usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let model = JointTopicModel::new(config(k, 10)).unwrap();
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                model.fit(&mut rng, black_box(&docs)).unwrap()
            });
        });
    }
    group.finish();
}

/// Instrumentation overhead: the same fit driven (a) through the plain
/// `fit` entry point, (b) through `fit_observed` with a disabled handle
/// (must be indistinguishable from (a) — the no-op recorder is a null
/// check), and (c) with a live in-memory sink (the worst realistic case:
/// every sweep computes stats and records an event).
fn bench_observer_overhead(c: &mut Criterion) {
    use rheotex_obs::{MemorySink, Obs};

    let mut group = c.benchmark_group("joint_fit_observer_overhead");
    group.sample_size(10);
    let docs = synth_docs(400);
    let model = JointTopicModel::new(config(8, 10)).unwrap();

    group.bench_function("plain_fit", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            model.fit(&mut rng, black_box(&docs)).unwrap()
        });
    });
    group.bench_function("disabled_obs", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            let mut obs = Obs::disabled();
            model
                .fit_observed(&mut rng, black_box(&docs), &mut obs)
                .unwrap()
        });
    });
    group.bench_function("memory_sink_obs", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            let sink = MemorySink::default();
            let mut obs = Obs::with_sinks(vec![Box::new(sink)]);
            model
                .fit_observed(&mut rng, black_box(&docs), &mut obs)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_by_docs,
    bench_fit_by_topics,
    bench_observer_overhead
);
criterion_main!(benches);

//! Microbenchmarks for the numerical substrate: the operations a single
//! Gibbs sweep performs thousands of times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_linalg::dist::{GaussianStats, NormalWishart};
use rheotex_linalg::{Cholesky, Matrix, Vector};
use std::hint::black_box;

fn spd(dim: usize) -> Matrix {
    // A^T A + I is SPD.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut a = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            a[(i, j)] = rheotex_linalg::dist::sample_std_normal(&mut rng);
        }
    }
    let mut s = a.matmul(&a.transpose()).unwrap();
    for i in 0..dim {
        s[(i, i)] += dim as f64;
    }
    s
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factor");
    for dim in [3usize, 6, 9] {
        let m = spd(dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &m, |b, m| {
            b.iter(|| Cholesky::factor(black_box(m)).unwrap());
        });
    }
    group.finish();
}

fn bench_gaussian_logpdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_log_pdf");
    for dim in [3usize, 6] {
        let prec = spd(dim);
        let g = rheotex_linalg::dist::GaussianPrecision::new(Vector::zeros(dim), prec).unwrap();
        let x = Vector::full(dim, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &g, |b, g| {
            b.iter(|| g.log_pdf(black_box(&x)).unwrap());
        });
    }
    group.finish();
}

fn bench_nw_posterior_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("nw_posterior_and_sample");
    for dim in [3usize, 6] {
        let prior = NormalWishart::vague(Vector::zeros(dim), 0.5, 0.5).unwrap();
        let mut stats = GaussianStats::new(dim);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..300 {
            let x: Vector = (0..dim)
                .map(|_| rheotex_linalg::dist::sample_std_normal(&mut rng))
                .collect();
            stats.add(&x).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(dim),
            &(prior, stats),
            |b, (prior, stats)| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                b.iter(|| {
                    prior
                        .posterior(black_box(stats))
                        .unwrap()
                        .sample(&mut rng)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_stats_add_remove(c: &mut Criterion) {
    let mut stats = GaussianStats::new(6);
    let x = Vector::full(6, 1.5);
    stats.add(&x).unwrap();
    c.bench_function("gaussian_stats_add_remove_6d", |b| {
        b.iter(|| {
            stats.add(black_box(&x)).unwrap();
            stats.remove(black_box(&x)).unwrap();
        });
    });
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_gaussian_logpdf,
    bench_nw_posterior_sample,
    bench_stats_add_remove
);
criterion_main!(benches);

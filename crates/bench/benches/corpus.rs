//! Corpus-side throughput: synthetic generation, quantity parsing, and
//! full dataset construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_corpus::synth::{generate, SynthConfig};
use rheotex_corpus::units::parse_quantity;
use rheotex_corpus::{Dataset, DatasetFilter, IngredientDb};
use rheotex_textures::TextureDictionary;
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let db = IngredientDb::builtin();
    let mut group = c.benchmark_group("synth_generate");
    group.sample_size(20);
    for n in [500usize, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(11);
                generate(&mut rng, &SynthConfig::small(n), black_box(&db)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_parse_quantity(c: &mut Criterion) {
    let samples = [
        "200g",
        "200cc",
        "1/2 cup",
        "oosaji 2",
        "kosaji 1/2",
        "1 1/2 cup",
        "about 30 g",
        "3 sheets",
    ];
    c.bench_function("parse_quantity_mixed", |b| {
        b.iter(|| {
            for s in &samples {
                let _ = parse_quantity(black_box(s)).unwrap();
            }
        });
    });
}

fn bench_dataset_build(c: &mut Criterion) {
    let db = IngredientDb::builtin();
    let dict = TextureDictionary::comprehensive();
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let corpus = generate(&mut rng, &SynthConfig::small(1000), &db).unwrap();
    let mut group = c.benchmark_group("dataset_build_1000");
    group.sample_size(20);
    group.bench_function("parse_extract_filter", |b| {
        b.iter(|| {
            Dataset::build(
                black_box(&corpus.recipes),
                &corpus.labels,
                &db,
                &dict,
                DatasetFilter::default(),
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generate,
    bench_parse_quantity,
    bench_dataset_build
);
criterion_main!(benches);

//! Linkage throughput: KL topic assignment and the emulsion-KL recipe
//! ranking behind Fig. 3 / Fig. 4.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::{FitOptions, FittedJointModel, JointConfig, JointTopicModel, ModelDoc};
use rheotex_corpus::features::gel_info_vector;
use rheotex_linalg::kl::{kl_discrete, kl_gaussian};
use rheotex_linalg::{Matrix, Vector};
use rheotex_linkage::assign::assign_setting;
use std::hint::black_box;

fn fitted_model() -> FittedJointModel {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let docs: Vec<ModelDoc> = (0..300)
        .map(|i| {
            use rand::Rng;
            let band = i % 5;
            let conc = 0.004 * (band + 1) as f64 * rng.gen_range(0.9..1.1);
            ModelDoc::new(
                i as u64,
                vec![band, (band + 1) % 5],
                gel_info_vector(&[conc, 0.0, 0.0]),
                Vector::full(6, 9.2),
            )
        })
        .collect();
    let config = JointConfig {
        sweeps: 30,
        burn_in: 15,
        ..JointConfig::quick(10, 5)
    };
    JointTopicModel::new(config)
        .unwrap()
        .fit_with(&mut rng, &docs, FitOptions::new())
        .unwrap()
}

fn bench_assign(c: &mut Criterion) {
    let model = fitted_model();
    c.bench_function("assign_setting_10_topics", |b| {
        b.iter(|| assign_setting(black_box(&model), 1, [0.02, 0.0, 0.0]).unwrap());
    });
}

fn bench_kl_primitives(c: &mut Criterion) {
    let mu0 = Vector::zeros(3);
    let mu1 = Vector::full(3, 0.5);
    let c0 = Matrix::from_diag(&[0.2, 0.3, 0.4]);
    let c1 = Matrix::from_diag(&[0.5, 0.2, 0.3]);
    c.bench_function("kl_gaussian_3d", |b| {
        b.iter(|| kl_gaussian(black_box(&mu0), &c0, &mu1, &c1).unwrap());
    });

    let p = Vector::new(vec![0.0, 0.0, 0.08, 0.2, 0.4, 0.0]);
    let q = Vector::new(vec![0.032, 0.0, 0.0, 0.0, 0.787, 0.0]);
    c.bench_function("kl_discrete_emulsion_6d", |b| {
        b.iter(|| kl_discrete(black_box(&p), &q, 1e-3).unwrap());
    });
}

criterion_group!(benches, bench_assign, bench_kl_primitives);
criterion_main!(benches);

//! TPA rheometer simulation throughput: curve synthesis and attribute
//! extraction across concentration sweeps (the Table I regeneration
//! workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheotex_rheology::table1::table1;
use rheotex_rheology::tpa::{GelMechanics, TpaConfig, TpaCurve};
use std::hint::black_box;

fn bench_curve(c: &mut Criterion) {
    let mech = GelMechanics::from_gel_concentrations([0.025, 0.0, 0.0]);
    let mut group = c.benchmark_group("tpa_simulate_extract");
    for steps in [100usize, 250, 1000] {
        let config = TpaConfig {
            steps_per_stroke: steps,
            ..TpaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(steps), &config, |b, cfg| {
            b.iter(|| {
                let curve = TpaCurve::simulate(black_box(&mech), cfg);
                curve.extract()
            });
        });
    }
    group.finish();
}

fn bench_table1_sweep(c: &mut Criterion) {
    let rows = table1();
    c.bench_function("table1_full_regeneration", |b| {
        b.iter(|| {
            rows.iter()
                .map(|r| {
                    GelMechanics::from_gel_concentrations(black_box(r.gels)).predicted_attributes()
                })
                .collect::<Vec<_>>()
        });
    });
}

fn bench_mechanics_only(c: &mut Criterion) {
    c.bench_function("gel_mechanics_from_concentrations", |b| {
        b.iter(|| GelMechanics::from_gel_concentrations(black_box([0.02, 0.01, 0.005])));
    });
}

criterion_group!(
    benches,
    bench_curve,
    bench_table1_sweep,
    bench_mechanics_only
);
criterion_main!(benches);

//! Word2vec training and query throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_corpus::synth::{generate, SynthConfig};
use rheotex_corpus::IngredientDb;
use rheotex_embed::{SgnsConfig, Word2Vec};
use rheotex_textures::tokenize;
use std::hint::black_box;

fn sentences(n_recipes: usize) -> Vec<Vec<String>> {
    let db = IngredientDb::builtin();
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let corpus = generate(&mut rng, &SynthConfig::small(n_recipes), &db).unwrap();
    corpus
        .recipes
        .iter()
        .map(|r| tokenize(&r.description))
        .collect()
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgns_train_1_epoch");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let sents = sentences(n);
        let config = SgnsConfig {
            dim: 32,
            epochs: 1,
            min_count: 2,
            ..SgnsConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &sents, |b, sents| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(22);
                Word2Vec::train(&mut rng, black_box(sents), &config)
            });
        });
    }
    group.finish();
}

fn bench_most_similar(c: &mut Criterion) {
    let sents = sentences(1000);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let model = Word2Vec::train(
        &mut rng,
        &sents,
        &SgnsConfig {
            dim: 32,
            epochs: 2,
            min_count: 2,
            ..SgnsConfig::default()
        },
    );
    c.bench_function("most_similar_top8", |b| {
        b.iter(|| model.most_similar(black_box("purupuru"), 8));
    });
}

criterion_group!(benches, bench_train, bench_most_similar);
criterion_main!(benches);

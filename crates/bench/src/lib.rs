//! Shared plumbing for the experiment harness binaries.
//!
//! Every paper table/figure has a binary in `src/bin/` (`exp_table1`,
//! `exp_fig2`, …) that regenerates it. Binaries run at **quick** scale by
//! default (seconds, for CI and smoke tests) and at **paper** scale with
//! `--paper` or `RHEOTEX_SCALE=paper` (the corpus size and sweep counts of
//! the paper).

#![warn(missing_docs)]
#![warn(clippy::all)]

use rheotex::pipeline::PipelineConfig;
use rheotex_obs::{JsonlSink, Obs};
use std::path::PathBuf;

/// Scale at which an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small corpus, short chains — seconds.
    Quick,
    /// The paper's dimensions — minutes.
    Paper,
}

impl Scale {
    /// Resolves the scale from CLI args (`--paper`) or the
    /// `RHEOTEX_SCALE` environment variable.
    #[must_use]
    pub fn from_env_and_args() -> Self {
        let arg_paper = std::env::args().any(|a| a == "--paper");
        let env_paper = std::env::var("RHEOTEX_SCALE")
            .map(|v| v.eq_ignore_ascii_case("paper"))
            .unwrap_or(false);
        if arg_paper || env_paper {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Pipeline configuration for this scale.
    #[must_use]
    pub fn pipeline_config(self) -> PipelineConfig {
        match self {
            Scale::Paper => PipelineConfig::paper_scale(),
            Scale::Quick => {
                let mut c = PipelineConfig::small(1200);
                c.sweeps = 150;
                c.burn_in = 75;
                c
            }
        }
    }

    /// Pipeline configuration for the within-topic dish analyses (E5 Fig. 3
    /// and E6 Fig. 4). The paper's hard-gelatin topic holds only 38
    /// recipes — too few for per-bin histograms on a sampled corpus — so
    /// this config boosts the hard archetype's sampling weight to give the
    /// within-topic gradients statistical power. The *shape* claims being
    /// tested are unaffected: they live inside the topic.
    #[must_use]
    pub fn fig34_pipeline_config(self) -> PipelineConfig {
        let mut c = self.pipeline_config();
        for a in &mut c.synth.archetypes {
            if a.name.starts_with("gelatin-hard") {
                a.weight *= 12.0;
            }
        }
        c
    }
}

/// Observability handle for an experiment binary: writes the structured
/// event stream (stage spans, per-sweep statistics — the schema in
/// README.md § Observability) to `results/BENCH_<name>.jsonl`. The
/// directory is overridable with `RHEOTEX_METRICS_DIR`. Failure to create
/// the file degrades to a disabled handle with a stderr warning —
/// metrics never block an experiment.
#[must_use]
pub fn experiment_obs(name: &str) -> Obs {
    let dir = std::env::var("RHEOTEX_METRICS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let path = dir.join(format!("BENCH_{name}.jsonl"));
    let created = std::fs::create_dir_all(&dir).and_then(|()| JsonlSink::create(&path));
    match created {
        Ok(sink) => {
            eprintln!("writing metrics to {}", path.display());
            Obs::with_sinks(vec![Box::new(sink)])
        }
        Err(e) => {
            eprintln!("warning: cannot write metrics to {}: {e}", path.display());
            Obs::disabled()
        }
    }
}

/// Prints a section rule with a title.
pub fn rule(title: &str) {
    println!(
        "\n==== {title} {}",
        "=".repeat(68usize.saturating_sub(title.len()))
    );
}

/// Formats a float compactly: 3 significant-ish decimals, trailing zeros
/// trimmed.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let s = if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    };
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Renders a horizontal ASCII bar of width proportional to
/// `value / max` (max width `width` chars).
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_trims() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.025), "0.025");
        assert_eq!(fmt(2.50), "2.5");
        assert_eq!(fmt(123.45), "123.5"); // rounded at 1 decimal
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########"); // clamped
    }

    #[test]
    fn default_scale_is_quick() {
        // No --paper arg in the test harness.
        if std::env::var("RHEOTEX_SCALE").is_err() {
            assert_eq!(Scale::from_env_and_args(), Scale::Quick);
        }
    }

    #[test]
    fn configs_differ_by_scale() {
        let q = Scale::Quick.pipeline_config();
        let p = Scale::Paper.pipeline_config();
        assert!(p.synth.n_recipes > q.synth.n_recipes);
        assert!(p.sweeps > q.sweeps);
    }
}

//! Experiment E3 — regenerates **Table II(a)**: the topics acquired by the
//! joint topic model (gel concentrations, texture terms with
//! probabilities, recipe counts) and their KL assignment to the empirical
//! data of Table I.

use rheotex::core::TopicSummary;
use rheotex::pipeline::PipelineRun;
use rheotex::rheology::table1::table1;
use rheotex_bench::{fmt, rule, Scale};
use rheotex_linkage::assign::{assign_settings, rows_per_topic};

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("table2a");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();

    let summaries = TopicSummary::from_model(&out.model, 10, 0.01).expect("summaries");
    let settings: Vec<(u32, [f64; 3])> = table1().iter().map(|r| (r.id, r.gels)).collect();
    let assignments = assign_settings(&out.model, &settings).expect("assignment");
    let per_topic = rows_per_topic(&assignments, out.model.n_topics());

    rule("Table II(a): topics, gel concentrations, texture terms, Table I rows");
    // Sort topics by recipe count descending for readability.
    let mut order: Vec<usize> = (0..summaries.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(summaries[k].n_recipes));
    let gel_names = ["gelatin", "kanten", "agar"];
    for &k in &order {
        let s = &summaries[k];
        if s.n_recipes == 0 {
            continue;
        }
        let gels: Vec<String> = s
            .gel_concentration
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0015) // floor exp(-9.2) ≈ 0.0001 noise
            .map(|(i, &c)| format!("{}:{}", gel_names[i], fmt(c)))
            .collect();
        let terms: Vec<String> = s
            .top_terms
            .iter()
            .map(|&(w, p)| {
                let entry = out.dict.entry(rheotex::textures::TermId(w as u32));
                format!("{}({})", entry.surface, fmt(p))
            })
            .collect();
        let rows: Vec<String> = per_topic[k].iter().map(|r| r.to_string()).collect();
        println!(
            "topic {k:>2} | {:<28} | #recipes {:>5} | Table I rows: {}",
            gels.join(" "),
            s.n_recipes,
            if rows.is_empty() {
                "-".into()
            } else {
                rows.join(",")
            }
        );
        println!("         | terms: {}", terms.join(" "));
    }

    rule("Table I row -> topic (KL divergence of gel concentrations)");
    for a in &assignments {
        println!(
            "row {:>2} -> topic {:>2}   (KL = {})",
            a.setting_id,
            a.topic,
            fmt(a.kl)
        );
    }

    // Ground-truth recovery (not in the paper — possible because the
    // corpus is synthetic).
    if !out.dataset.labels.is_empty() {
        let pred: Vec<usize> = (0..out.model.n_docs())
            .map(|d| out.model.dominant_topic(d))
            .collect();
        rule("recovery vs generator archetypes");
        println!(
            "purity = {:.3}   NMI = {:.3}   ARI = {:.3}",
            rheotex_linkage::purity(&pred, &out.dataset.labels),
            rheotex_linkage::normalized_mutual_information(&pred, &out.dataset.labels),
            rheotex_linkage::adjusted_rand_index(&pred, &out.dataset.labels),
        );
    }
}

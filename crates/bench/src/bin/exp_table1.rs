//! Experiment E1 — regenerates **Table I**: the 13 empirical gel settings
//! with their measured texture, side by side with the TPA simulator's
//! prediction at the same concentrations, plus rank-correlation summary.

use rheotex::rheology::table1::table1;
use rheotex::rheology::tpa::GelMechanics;
use rheotex_bench::{fmt, rule};

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(xs: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
        let mut r = vec![0.0; xs.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = ra.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for i in 0..ra.len() {
        let (x, y) = (ra[i] - mean, rb[i] - mean);
        num += x * y;
        da += x * x;
        db += y * y;
    }
    num / (da.sqrt() * db.sqrt())
}

fn main() {
    rule("Table I: empirical settings vs TPA simulator (RU)");
    println!(
        "{:>4} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "row",
        "gelatin",
        "kanten",
        "agar",
        "H paper",
        "C paper",
        "A paper",
        "H sim",
        "C sim",
        "A sim"
    );
    let rows = table1();
    let mut paper_h = Vec::new();
    let mut sim_h = Vec::new();
    let mut paper_c = Vec::new();
    let mut sim_c = Vec::new();
    let mut paper_a = Vec::new();
    let mut sim_a = Vec::new();
    for r in &rows {
        let sim = GelMechanics::from_gel_concentrations(r.gels).predicted_attributes();
        println!(
            "{:>4} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            r.id,
            fmt(r.gelatin()),
            fmt(r.kanten()),
            fmt(r.agar()),
            fmt(r.attributes.hardness),
            fmt(r.attributes.cohesiveness),
            fmt(r.attributes.adhesiveness),
            fmt(sim.hardness),
            fmt(sim.cohesiveness),
            fmt(sim.adhesiveness),
        );
        paper_h.push(r.attributes.hardness);
        sim_h.push(sim.hardness);
        paper_c.push(r.attributes.cohesiveness);
        sim_c.push(sim.cohesiveness);
        paper_a.push(r.attributes.adhesiveness);
        sim_a.push(sim.adhesiveness);
    }
    rule("agreement (Spearman rank correlation, 13 rows)");
    println!("hardness      rho = {:.3}", spearman(&paper_h, &sim_h));
    println!("cohesiveness  rho = {:.3}", spearman(&paper_c, &sim_c));
    println!("adhesiveness  rho = {:.3}", spearman(&paper_a, &sim_a));
    println!(
        "\n(The simulator is calibrated for shape, not absolute match; rows 8 and 13\n\
         are the paper's own outliers — see crates/rheology/src/tpa.rs docs.)"
    );
}

//! Experiment E4 — regenerates **Table II(b)**: the Bavarois / milk-jelly
//! records with their assigned topics, and checks the paper's headline:
//! both dishes (and the pure-gelatin reference) land on the same
//! hard-gelatin topic.

use rheotex::pipeline::PipelineRun;
use rheotex::rheology::dishes::table2b;
use rheotex_bench::{fmt, rule, Scale};
use rheotex_linkage::assign::assign_setting;

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("table2b");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();

    rule("Table II(b): dishes, quantitative texture, assigned topic");
    println!(
        "{:<20} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>6}",
        "dish", "H", "C", "A", "gelatin", "kanten", "agar", "topic"
    );
    let mut topics = Vec::new();
    for (i, dish) in table2b().iter().enumerate() {
        let a = assign_setting(&out.model, i as u32, dish.gels).expect("assign");
        println!(
            "{:<20} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>6}",
            dish.name,
            fmt(dish.attributes.hardness),
            fmt(dish.attributes.cohesiveness),
            fmt(dish.attributes.adhesiveness),
            fmt(dish.gels[0]),
            fmt(dish.gels[1]),
            fmt(dish.gels[2]),
            a.topic
        );
        topics.push(a.topic);
    }
    rule("check");
    if topics.windows(2).all(|w| w[0] == w[1]) {
        println!(
            "PASS: all three records (same 2.5% gelatin) assign to topic {} —\n\
             the paper's result (its topic 3).",
            topics[0]
        );
    } else {
        println!(
            "note: assignments differ ({topics:?}); at quick scale the gelatin band\n\
             may split across topics — rerun with --paper."
        );
    }
    // Show the topic's texture terms so the linkage is interpretable.
    let topic = topics[0];
    let summaries =
        rheotex::core::TopicSummary::from_model(&out.model, 8, 0.01).expect("summaries");
    let s = &summaries[topic];
    let terms: Vec<String> = s
        .top_terms
        .iter()
        .map(|&(w, p)| {
            let e = out.dict.entry(rheotex::textures::TermId(w as u32));
            format!("{}({})", e.surface, fmt(p))
        })
        .collect();
    println!("topic {topic} texture terms: {}", terms.join(" "));
}

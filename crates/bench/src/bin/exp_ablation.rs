//! Experiment E8 (extension) — sampler ablation: the paper's
//! semi-collapsed Gibbs (explicit Normal-Wishart resampling, Eq. 4) vs
//! the fully-collapsed Student-t variant, on the same data and budget.
//! Reports convergence traces and held-out scores.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex::core::collapsed::CollapsedJointModel;
use rheotex::core::diagnostics::held_out_score;
use rheotex::core::{FitOptions, JointConfig, JointTopicModel};
use rheotex::pipeline::PipelineRun;
use rheotex_bench::{rule, Scale};
use rheotex_linkage::encode::dataset_to_docs;

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("ablation");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();
    let docs = dataset_to_docs(&out.dataset);

    // 80/20 train/held-out split (deterministic, by index).
    let split = docs.len() * 4 / 5;
    let (train, test) = docs.split_at(split);

    let model_config = JointConfig {
        n_topics: config.n_topics,
        sweeps: config.sweeps,
        burn_in: config.burn_in,
        ..JointConfig::paper_default(out.dict.len())
    };

    let t0 = std::time::Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let semi = JointTopicModel::new(model_config.clone())
        .expect("config")
        .fit_with(&mut rng, train, FitOptions::new())
        .expect("semi-collapsed fit");
    let semi_secs = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let full = CollapsedJointModel::new(model_config)
        .expect("config")
        .fit_with(&mut rng, train, FitOptions::new())
        .expect("collapsed fit");
    let full_secs = t0.elapsed().as_secs_f64();

    let semi_score = held_out_score(&semi, test).expect("score");
    let full_score = held_out_score(&full, test).expect("score");

    rule("sampler ablation: semi-collapsed (paper, Eq. 4) vs fully collapsed");
    println!(
        "{:<18} {:>12} {:>14} {:>14} {:>10}",
        "engine", "wall (s)", "final train LL", "held-out LL", "perplexity"
    );
    for (name, fit, secs, score) in [
        ("semi-collapsed", &semi, semi_secs, &semi_score),
        ("fully collapsed", &full, full_secs, &full_score),
    ] {
        println!(
            "{:<18} {:>12.2} {:>14.1} {:>14.1} {:>10.3}",
            name,
            secs,
            fit.ll_trace.last().copied().unwrap_or(f64::NAN),
            score.log_likelihood,
            score.perplexity
        );
    }

    rule("convergence traces (train conditional LL at sweep 1, 25%, 50%, 75%, end)");
    let sample_points = |trace: &[f64]| -> Vec<f64> {
        let n = trace.len();
        [0, n / 4, n / 2, 3 * n / 4, n - 1]
            .iter()
            .map(|&i| trace[i])
            .collect()
    };
    println!(
        "semi:  {:?}",
        sample_points(&semi.ll_trace)
            .iter()
            .map(|v| v.round())
            .collect::<Vec<_>>()
    );
    println!(
        "full:  {:?}",
        sample_points(&full.ll_trace)
            .iter()
            .map(|v| v.round())
            .collect::<Vec<_>>()
    );
    println!(
        "\n(Traces are not directly comparable in level — the collapsed trace\n\
         scores predictives — but both must rise and plateau; the collapsed\n\
         variant typically needs fewer sweeps and more wall time per sweep.)"
    );
}

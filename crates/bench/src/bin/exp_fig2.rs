//! Experiment E2 — regenerates **Fig. 2**: the two-bite rheometer force
//! curve with its annotated quantities (F1, areas a/b/c), rendered as an
//! ASCII time series.

use rheotex::rheology::tpa::{GelMechanics, TpaConfig, TpaCurve};
use rheotex_bench::{fmt, rule};

fn main() {
    // A 2.5 % gelatin sample (Table I row 3) — visibly adhesive, clearly
    // two-peaked.
    let mech = GelMechanics::from_gel_concentrations([0.025, 0.0, 0.0]);
    let config = TpaConfig {
        steps_per_stroke: 40, // coarse sampling renders nicely in ASCII
        ..TpaConfig::default()
    };
    let curve = TpaCurve::simulate(&mech, &config);
    let attrs = curve.extract();

    rule("Fig. 2: TPA force curve, 2.5% gelatin (force in RU over time)");
    let max_f = curve.force.iter().cloned().fold(0.0f64, f64::max);
    let min_f = curve.force.iter().cloned().fold(0.0f64, f64::min);
    let span = (max_f - min_f).max(1e-9);
    let height = 19;
    // Render rows from max force down to min force.
    for row in 0..=height {
        let level = max_f - span * row as f64 / height as f64;
        let mut line = String::new();
        for &f in &curve.force {
            let cell = if (f - level).abs() <= span / (2 * height) as f64 {
                '*'
            } else if level.abs() <= span / (2 * height) as f64 {
                '-' // zero axis
            } else {
                ' '
            };
            line.push(cell);
        }
        println!("{:>7} |{line}", fmt(level));
    }
    println!("{:>7} +{}", "", "-".repeat(curve.force.len()));
    println!(
        "{:>7}  {:^40}{:^40}{:^40}{:^40}",
        "", "bite 1 down", "bite 1 up (area b < 0)", "bite 2 down", "bite 2 up"
    );

    rule("extracted attributes");
    println!("hardness (F1 peak)        = {} RU", fmt(attrs.hardness));
    println!("cohesiveness (c/a)        = {}", fmt(attrs.cohesiveness));
    println!(
        "adhesiveness (area b)     = {} RU.s",
        fmt(attrs.adhesiveness)
    );
    println!("paper Table I row 3       =  H 0.72, C 0.17, A 0.57 (same gel, same shape)");
}

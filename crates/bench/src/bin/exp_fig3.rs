//! Experiment E5 — regenerates **Fig. 3**: within the dish's assigned
//! topic, recipes are ordered by KL divergence of emulsion concentrations
//! to the dish; bins near the dish should skew to hardness terms for both
//! dishes (a), and to elastic terms for Bavarois but not milk jelly (b).

use rheotex::pipeline::PipelineRun;
use rheotex::rheology::dishes::{bavarois, milk_jelly};
use rheotex_bench::{bar, rule, Scale};
use rheotex_linkage::assign::assign_setting;
use rheotex_linkage::dish::fig3_histogram;

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.fig34_pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("fig3");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();

    for dish in [bavarois(), milk_jelly()] {
        let assignment = assign_setting(&out.model, 0, dish.gels).expect("assign");
        let topic = assignment.topic;
        let bins = fig3_histogram(
            &out.model,
            &out.dataset.features,
            &out.dict,
            topic,
            &dish.emulsions,
            8,
        )
        .expect("fig3");
        if bins.is_empty() {
            println!("topic {topic} holds no recipes at this scale; rerun with --paper");
            continue;
        }

        rule(&format!(
            "Fig. 3 for {} (topic {topic}; bin 0 = most similar emulsions)",
            dish.name
        ));
        let max = bins
            .iter()
            .map(|b| {
                b.hardness_terms
                    .max(b.softness_terms)
                    .max(b.elastic_terms)
                    .max(b.cohesive_terms)
            })
            .max()
            .unwrap_or(1) as f64;
        println!("(a) hardness vs softness");
        for b in &bins {
            println!(
                "bin {:>2} [KL {:>6.3}..{:>6.3}] n={:<4} hard {:>3} {:<24} soft {:>3} {}",
                b.bin,
                b.kl_range.0,
                b.kl_range.1,
                b.n_recipes,
                b.hardness_terms,
                bar(b.hardness_terms as f64, max, 24),
                b.softness_terms,
                bar(b.softness_terms as f64, max, 24),
            );
        }
        println!("(b) elastic vs cohesive");
        for b in &bins {
            println!(
                "bin {:>2} [KL {:>6.3}..{:>6.3}] n={:<4} elas {:>3} {:<24} coh  {:>3} {}",
                b.bin,
                b.kl_range.0,
                b.kl_range.1,
                b.n_recipes,
                b.elastic_terms,
                bar(b.elastic_terms as f64, max, 24),
                b.cohesive_terms,
                bar(b.cohesive_terms as f64, max, 24),
            );
        }
        // Headline statistic: hardness share in the nearest vs farthest
        // third of bins.
        let third = (bins.len() / 3).max(1);
        let share = |bs: &[rheotex_linkage::Fig3Bin]| {
            let hard: usize = bs.iter().map(|b| b.hardness_terms).sum();
            let soft: usize = bs.iter().map(|b| b.softness_terms).sum();
            hard as f64 / (hard + soft).max(1) as f64
        };
        println!(
            "hardness share: nearest third {:.2} vs farthest third {:.2}",
            share(&bins[..third]),
            share(&bins[bins.len() - third..]),
        );
        // Rate of elastic terms per term occurrence (the paper's Fig. 3b
        // contrast: a gradient for Bavarois, none for milk jelly).
        let erate = |bs: &[rheotex_linkage::Fig3Bin]| {
            let e: usize = bs.iter().map(|b| b.elastic_terms).sum();
            let t: usize = bs.iter().map(|b| b.total_terms).sum();
            e as f64 / t.max(1) as f64
        };
        println!(
            "elastic rate:   nearest third {:.2} vs farthest third {:.2}",
            erate(&bins[..third]),
            erate(&bins[bins.len() - third..]),
        );
    }
}

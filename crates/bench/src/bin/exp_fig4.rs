//! Experiment E6 — regenerates **Fig. 4**: recipes of the assigned topic
//! on the consolidated hardness (x) / cohesiveness (y) axes, colored by
//! emulsion-KL to the dish, with the topic-centroid star. Rendered as an
//! ASCII scatter with three KL shades.

use rheotex::pipeline::PipelineRun;
use rheotex::rheology::dishes::{bavarois, milk_jelly};
use rheotex_bench::{rule, Scale};
use rheotex_linkage::assign::assign_setting;
use rheotex_linkage::dish::fig4_scatter;

const W: usize = 61;
const H: usize = 21;

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.fig34_pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("fig4");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();

    for dish in [bavarois(), milk_jelly()] {
        let topic = assign_setting(&out.model, 0, dish.gels)
            .expect("assign")
            .topic;
        let scatter = fig4_scatter(
            &out.model,
            &out.dataset.features,
            &out.dict,
            topic,
            &dish.emulsions,
        )
        .expect("fig4");
        rule(&format!(
            "Fig. 4 for {} (topic {topic}; @=nearest KL third, o=middle, .=farthest, *=topic)",
            dish.name
        ));
        let n = scatter.points.len();
        let mut grid = vec![vec![' '; W]; H];
        // Points are sorted by ascending KL; thirds become shades.
        for (i, p) in scatter.points.iter().enumerate() {
            let x = (((p.hardness + 1.0) / 2.0) * (W - 1) as f64).round() as usize;
            let y = ((1.0 - (p.cohesiveness + 1.0) / 2.0) * (H - 1) as f64).round() as usize;
            let shade = if i < n / 3 {
                '@'
            } else if i < 2 * n / 3 {
                'o'
            } else {
                '.'
            };
            let cell = &mut grid[y.min(H - 1)][x.min(W - 1)];
            // Nearest shade wins overlaps.
            if *cell == ' ' || *cell == '.' || (*cell == 'o' && shade == '@') {
                *cell = shade;
            }
        }
        let sx = (((scatter.star_hardness + 1.0) / 2.0) * (W - 1) as f64).round() as usize;
        let sy =
            ((1.0 - (scatter.star_cohesiveness + 1.0) / 2.0) * (H - 1) as f64).round() as usize;
        grid[sy.min(H - 1)][sx.min(W - 1)] = '*';

        println!("cohesiveness (+1 top, -1 bottom) vs hardness (-1 left, +1 right)");
        for (y, row) in grid.iter().enumerate() {
            let label = if y == 0 {
                "+1"
            } else if y == H - 1 {
                "-1"
            } else if y == H / 2 {
                " 0"
            } else {
                "  "
            };
            println!("{label} |{}|", row.iter().collect::<String>());
        }
        println!("   -1{}+1", " ".repeat(W - 4));

        // Headline statistic: mean hardness of the nearest vs farthest third.
        let mean = |ps: &[rheotex_linkage::Fig4Point],
                    f: fn(&rheotex_linkage::Fig4Point) -> f64| {
            if ps.is_empty() {
                0.0
            } else {
                ps.iter().map(f).sum::<f64>() / ps.len() as f64
            }
        };
        let near = &scatter.points[..n / 3];
        let far = &scatter.points[2 * n / 3..];
        println!(
            "mean hardness:     near {:+.2}  far {:+.2}   (star {:+.2})",
            mean(near, |p| p.hardness),
            mean(far, |p| p.hardness),
            scatter.star_hardness
        );
        println!(
            "mean cohesiveness: near {:+.2}  far {:+.2}   (star {:+.2})",
            mean(near, |p| p.cohesiveness),
            mean(far, |p| p.cohesiveness),
            scatter.star_cohesiveness
        );
    }
}

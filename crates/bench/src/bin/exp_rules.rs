//! Experiment E10 (extension) — association rules between texture terms
//! and gel concentrations, the paper's stated future work ("detect rules
//! bridging between recipe information including ingredient
//! concentrations … and sensory textures").

use rheotex::pipeline::PipelineRun;
use rheotex_bench::{rule, Scale};
use rheotex_linkage::rules::mine_term_rules;

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("rules");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();

    let min_support = out.dataset.len() / 200 + 3;
    let mined = mine_term_rules(&out.dataset.features, &out.dict, min_support);
    let gel_names = ["gelatin", "kanten", "agar"];

    rule(&format!(
        "term -> gel-concentration rules (support >= {min_support}, sorted by lift)"
    ));
    println!(
        "{:>14} {:>8} {:>8} | {:>10} {:>7} | reading",
        "term", "support", "lift", "gel", "conc%"
    );
    for r in mined.iter().take(15) {
        println!(
            "{:>14} {:>8} {:>8.2} | {:>10} {:>7.2} | \"{}\" signals ~{:.1}% {}",
            r.surface,
            r.support,
            r.lift,
            gel_names[r.dominant_gel.0],
            r.dominant_gel.1 * 100.0,
            r.surface,
            r.dominant_gel.1 * 100.0,
            gel_names[r.dominant_gel.0],
        );
    }

    // Sanity narrative: hard terms should sit at visibly higher gelatin
    // concentrations than soft terms.
    let conc_of = |surface: &str| {
        mined
            .iter()
            .find(|r| r.surface == surface)
            .map(|r| r.dominant_gel.1)
    };
    rule("paper-shape check");
    match (conc_of("katai"), conc_of("furufuru")) {
        (Some(hard), Some(soft)) => {
            println!(
                "katai -> gelatin {:.2}%  vs  furufuru -> gelatin {:.2}%  ({})",
                hard * 100.0,
                soft * 100.0,
                if hard > soft * 2.0 {
                    "PASS: hard terms live at far higher concentration"
                } else {
                    "UNEXPECTED: bands too close"
                }
            );
        }
        _ => println!("(katai/furufuru below support threshold at this scale)"),
    }
}

//! Experiment E9 (extension) — model selection over the number of topics
//! `K` (the paper fixes K = 10 with no justification) plus a multi-chain
//! convergence check (Gelman-Rubin R̂ on the log-likelihood traces).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex::core::model_selection::{best_k, potential_scale_reduction, split_docs, sweep_topics};
use rheotex::core::{FitOptions, JointConfig, JointTopicModel};
use rheotex::pipeline::PipelineRun;
use rheotex_bench::{rule, Scale};
use rheotex_linkage::encode::dataset_to_docs;

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("select_k");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();
    let docs = dataset_to_docs(&out.dataset);
    let (train, test) = split_docs(&docs, 5);

    let base = JointConfig {
        sweeps: config.sweeps,
        burn_in: config.burn_in,
        ..JointConfig::paper_default(out.dict.len())
    };
    let ks = [2usize, 4, 6, 8, 10, 14, 20];
    eprintln!("sweeping K over {ks:?} (parallel chains)…");
    let scores = sweep_topics(config.seed ^ 0x5E1E, &base, &ks, &train, &test).expect("sweep");

    rule("held-out model selection over K (ground truth: 10 archetypes)");
    println!(
        "{:>4} {:>16} {:>12} {:>16}",
        "K", "held-out LL", "perplexity", "train LL"
    );
    for s in &scores {
        println!(
            "{:>4} {:>16.1} {:>12.3} {:>16.1}",
            s.k, s.held_out_log_likelihood, s.perplexity, s.train_log_likelihood
        );
    }
    println!(
        "best K by held-out likelihood: {} (paper used 10; the generator has 10 archetypes,\n\
         several of which share vocabulary and gel bands, so nearby K values score similarly)",
        best_k(&scores).expect("non-empty sweep")
    );

    // Multi-chain convergence at the chosen K.
    rule("convergence: 4 chains at K = 10, R-hat over the LL trace");
    let model = JointTopicModel::new(JointConfig {
        n_topics: 10,
        ..base
    })
    .expect("config");
    let traces: Vec<Vec<f64>> = (0..4u64)
        .map(|c| {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + c);
            model
                .fit_with(&mut rng, &train, FitOptions::new())
                .expect("chain fit")
                .ll_trace
        })
        .collect();
    let rhat = potential_scale_reduction(&traces).expect("enough chains");
    println!("R-hat = {rhat:.4}  (< 1.1 indicates the chains agree)");
    for (c, t) in traces.iter().enumerate() {
        println!(
            "chain {c}: start {:>12.1}  end {:>12.1}",
            t[0],
            t.last().unwrap()
        );
    }
}

//! Experiment E7 (extension) — ground-truth recovery ablation: the joint
//! topic model vs an LDA baseline (terms only) vs a GMM baseline
//! (concentrations only), scored as clusterings of recipes against the
//! generator's archetype labels.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex::core::gmm::{GmmConfig, GmmModel};
use rheotex::core::lda::{LdaConfig, LdaModel};
use rheotex::core::FitOptions;
use rheotex::pipeline::PipelineRun;
use rheotex_bench::{rule, Scale};
use rheotex_linkage::encode::dataset_to_docs;
use rheotex_linkage::{adjusted_rand_index, normalized_mutual_information, purity};

fn main() {
    let scale = Scale::from_env_and_args();
    let config = scale.pipeline_config();
    eprintln!(
        "running pipeline at {scale:?} scale ({} recipes, {} sweeps)…",
        config.synth.n_recipes, config.sweeps
    );
    let obs = rheotex_bench::experiment_obs("recovery");
    let out = PipelineRun::new(&config)
        .observed(&obs)
        .run()
        .expect("pipeline");
    obs.flush();
    let truth = &out.dataset.labels;
    let docs = dataset_to_docs(&out.dataset);
    let k = out.model.n_topics();

    // Joint model assignment (dominant topic).
    let joint: Vec<usize> = (0..out.model.n_docs())
        .map(|d| out.model.dominant_topic(d))
        .collect();

    // LDA baseline on the same docs.
    let lda_cfg = LdaConfig {
        n_topics: k,
        vocab_size: out.dict.len(),
        alpha: 0.5,
        gamma: 0.1,
        sweeps: config.sweeps,
        burn_in: config.burn_in,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xABCD);
    let lda_fit = LdaModel::new(lda_cfg)
        .expect("lda config")
        .fit_with(&mut rng, &docs, FitOptions::new())
        .expect("lda fit");
    let lda: Vec<usize> = (0..docs.len()).map(|d| lda_fit.dominant_topic(d)).collect();

    // GMM baseline on the same docs.
    let mut gmm_cfg = GmmConfig::new(k);
    gmm_cfg.sweeps = config.sweeps.min(120);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xDCBA);
    let gmm_fit = GmmModel::new(gmm_cfg)
        .expect("gmm config")
        .fit_with(&mut rng, &docs, FitOptions::new())
        .expect("gmm fit");

    rule("recovery of generator archetypes (higher is better)");
    println!("{:<24} {:>8} {:>8} {:>8}", "model", "purity", "NMI", "ARI");
    for (name, pred) in [
        ("joint (paper)", &joint),
        ("LDA (terms only)", &lda),
        ("GMM (vectors only)", &gmm_fit.assignments),
    ] {
        println!(
            "{:<24} {:>8.3} {:>8.3} {:>8.3}",
            name,
            purity(pred, truth),
            normalized_mutual_information(pred, truth),
            adjusted_rand_index(pred, truth)
        );
    }
    println!(
        "\n(Expected shape: joint clearly beats LDA — words alone cannot tell the four\n\
         furufuru concentration bands apart. The GMM is a strong competitor on *pure\n\
         recovery* here because the synthetic concentration channel is highly\n\
         separable, and shared vocabulary actively pulls the joint model's soft bands\n\
         together; what the GMM cannot do at any score is describe its clusters —\n\
         the joint model's topics carry the texture vocabulary that the paper's\n\
         rheology linkage and Fig. 3/4 analyses require.)"
    );
}

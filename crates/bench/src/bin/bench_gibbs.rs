//! Gibbs hot-path throughput, machine-readable: writes
//! `results/BENCH_gibbs.json` (schema `rheotex.bench.gibbs/1`) comparing
//! the serial joint kernel against the deterministic parallel kernel, and
//! the GMM sweep with the Student-t predictive cache on vs. off.
//!
//! The JSON shape (stable; consumed by CI and the README's performance
//! section):
//!
//! ```json
//! {
//!   "schema": "rheotex.bench.gibbs/1",
//!   "corpus": { "docs": 400, "tokens": 1200, "vocab": 12, "topics": 8 },
//!   "sweeps": 20,
//!   "engines": {
//!     "joint_serial":   { "threads": 0, "wall_secs": 0.8,
//!                         "sweeps_per_sec": 25.0, "tokens_per_sec": 3.0e4,
//!                         "cache_hit_rate": null },
//!     "joint_parallel": { ... }, "gmm_cached": { ... }, "gmm_uncached": { ... }
//!   },
//!   "speedup": { "joint_parallel_over_serial": 2.1,
//!                "gmm_cached_over_uncached": 3.4 }
//! }
//! ```
//!
//! Runs at quick scale by default; `--paper` / `RHEOTEX_SCALE=paper`
//! enlarges the corpus and sweep budget. `--threads N` sets the parallel
//! variant's worker count (default 4). Timings are best-of-3; the
//! correctness claims behind the comparison (thread-count invariance,
//! cached == uncached bitwise) are pinned by `crates/core/tests`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex::core::gmm::{GmmConfig, GmmModel};
use rheotex::core::{FitOptions, JointConfig, JointTopicModel, ModelDoc};
use rheotex::corpus::features::gel_info_vector;
use rheotex_bench::Scale;
use rheotex_linalg::Vector;
use rheotex_obs::{EventKind, MemorySink, Obs};
use std::path::PathBuf;
use std::time::Instant;

const VOCAB: usize = 12;
const TOPICS: usize = 8;
const REPS: usize = 3;

fn synth_docs(n: usize) -> Vec<ModelDoc> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            use rand::Rng;
            let band = i % 4;
            let conc = 0.005 * (band + 1) as f64 * rng.gen_range(0.9..1.1);
            let terms: Vec<usize> = (0..3).map(|t| (band * 3 + t) % VOCAB).collect();
            ModelDoc::new(
                i as u64,
                terms,
                gel_info_vector(&[conc, 0.0, 0.0]),
                Vector::full(6, 9.2),
            )
        })
        .collect()
}

/// Best-of-`REPS` wall time of `f`, in seconds.
fn time_best(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn engine_entry(
    wall: f64,
    sweeps: usize,
    tokens: usize,
    threads: usize,
    cache_hit_rate: Option<f64>,
) -> serde_json::Value {
    serde_json::json!({
        "threads": threads,
        "wall_secs": wall,
        "sweeps_per_sec": sweeps as f64 / wall,
        "tokens_per_sec": (tokens * sweeps) as f64 / wall,
        "cache_hit_rate": cache_hit_rate,
    })
}

/// Sums the `cache_lookups` / `cache_hits` sweep-event fields of one
/// observed fit and returns hits/lookups (None when the engine never
/// consulted the cache).
fn observed_hit_rate(f: impl FnOnce(&mut Obs)) -> Option<f64> {
    let sink = MemorySink::default();
    let mut obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
    f(&mut obs);
    let (mut lookups, mut hits) = (0.0f64, 0.0f64);
    for e in sink.events_of(EventKind::Sweep) {
        lookups += e.field_f64("cache_lookups").unwrap_or(0.0);
        hits += e.field_f64("cache_hits").unwrap_or(0.0);
    }
    (lookups > 0.0).then(|| hits / lookups)
}

fn main() {
    let scale = Scale::from_env_and_args();
    let (n_docs, sweeps) = match scale {
        Scale::Paper => (3000, 100),
        Scale::Quick => (400, 20),
    };
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4);

    let docs = synth_docs(n_docs);
    let tokens: usize = docs.iter().map(|d| d.terms.len()).sum();
    let joint_cfg = JointConfig {
        n_topics: TOPICS,
        sweeps,
        burn_in: sweeps / 2,
        ..JointConfig::paper_default(VOCAB)
    };
    let joint = JointTopicModel::new(joint_cfg).expect("joint config");
    let mut gmm_cfg = GmmConfig::new(TOPICS);
    gmm_cfg.sweeps = sweeps;
    let gmm = GmmModel::new(gmm_cfg).expect("gmm config");

    eprintln!(
        "benchmarking {n_docs} docs ({tokens} tokens), {sweeps} sweeps, \
         parallel variant at {threads} threads…"
    );

    let serial = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        joint.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
    });
    let parallel = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        joint
            .fit_with(&mut rng, &docs, FitOptions::new().threads(threads))
            .unwrap();
    });
    let cached = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        gmm.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
    });
    let uncached = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        gmm.fit_with(&mut rng, &docs, FitOptions::new().predictive_cache(false))
            .unwrap();
    });
    let gmm_hit_rate = observed_hit_rate(|obs| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        gmm.fit_with(&mut rng, &docs, FitOptions::new().observer(obs))
            .unwrap();
    });

    let report = serde_json::json!({
        "schema": "rheotex.bench.gibbs/1",
        "corpus": { "docs": n_docs, "tokens": tokens, "vocab": VOCAB, "topics": TOPICS },
        "sweeps": sweeps,
        "engines": {
            "joint_serial": engine_entry(serial, sweeps, tokens, 0, None),
            "joint_parallel": engine_entry(parallel, sweeps, tokens, threads, None),
            "gmm_cached": engine_entry(cached, sweeps, tokens, 0, gmm_hit_rate),
            "gmm_uncached": engine_entry(uncached, sweeps, tokens, 0, Some(0.0)),
        },
        "speedup": {
            "joint_parallel_over_serial": serial / parallel,
            "gmm_cached_over_uncached": uncached / cached,
        },
    });

    let dir = std::env::var("RHEOTEX_METRICS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let path = dir.join("BENCH_gibbs.json");
    let write = std::fs::create_dir_all(&dir).and_then(|()| {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&report).expect("serialize report"),
        )
    });
    match write {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    println!(
        "joint: serial {:.2}s, parallel({threads}) {:.2}s ({:.2}x)",
        serial,
        parallel,
        serial / parallel
    );
    println!(
        "gmm:   uncached {:.2}s, cached {:.2}s ({:.2}x, hit rate {})",
        uncached,
        cached,
        uncached / cached,
        gmm_hit_rate.map_or("n/a".to_string(), |r| format!("{r:.3}"))
    );
}

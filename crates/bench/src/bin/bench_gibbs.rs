//! Gibbs hot-path throughput, machine-readable: writes
//! `results/BENCH_gibbs.json` (schema `rheotex.bench.gibbs/6`) comparing
//! the serial joint kernel against the deterministic parallel and sparse
//! kernels, the GMM sweep with the Student-t predictive cache on vs. off,
//! a kernel scan of the dense-serial, sparse, dense-parallel,
//! sparse-parallel, and alias-table MH LDA sweeps across topic counts
//! and thread counts (where the sparse kernels' `O(nnz)` per-token cost
//! should pull ahead of the dense `O(K)` scan as `K` grows, the chunked
//! sparse-parallel composition should beat both single-threaded sparse
//! and dense parallel at the same thread count, and the alias kernel's
//! `O(1)`-amortized MH draws should beat single-threaded sparse at the
//! largest `K`), and the overhead of the fitting supervisor's sampled
//! invariant audit on the LDA scan shape.
//!
//! The JSON shape (stable; consumed by CI and the README's performance
//! section):
//!
//! ```json
//! {
//!   "schema": "rheotex.bench.gibbs/6",
//!   "meta": { "git_describe": "v0-12-gabc1234", "cpu_model": "...",
//!             "host_threads": 16 },
//!   "corpus": { "docs": 400, "tokens": 1200, "vocab": 12, "topics": 8 },
//!   "sweeps": 20,
//!   "engines": {
//!     "joint_serial":   { "threads": 0, "wall_secs": 0.8,
//!                         "sweeps_per_sec": 25.0, "tokens_per_sec": 3.0e4,
//!                         "cache_hit_rate": null },
//!     "joint_parallel": { ... }, "joint_sparse": { ... },
//!     "gmm_cached": { ... }, "gmm_uncached": { ... }
//!   },
//!   "kernel_scan": {
//!     "docs": 1536, "tokens": 73728, "tokens_per_doc": 48, "vocab": 512,
//!     "sweeps": 8,
//!     "k8":   { "serial": { ... }, "sparse": { ... },
//!               "parallel_t2": { ... }, "parallel_t4": { ... },
//!               "sparse_parallel_t0": { ... },
//!               "sparse_parallel_t2": { ... },
//!               "sparse_parallel_t4": { ... },
//!               "alias_t0": { ... }, "alias_t2": { ... },
//!               "alias_t4": { ... } },
//!     "k32":  { ... }, "k128": { ... }
//!   },
//!   "health": {
//!     "policy": { "audit_every": 16, "snapshot_every": 8 },
//!     "lda_k32_serial": { "plain_wall_secs": 0.072,
//!                         "supervised_wall_secs": 0.073,
//!                         "overhead_frac": 0.014 },
//!     "lda_k32_sparse": { ... }
//!   },
//!   "speedup": { "joint_parallel_over_serial": 2.1,
//!                "joint_sparse_over_serial": 1.1,
//!                "gmm_cached_over_uncached": 3.4,
//!                "sparse_over_serial_k8": 0.9,
//!                "sparse_over_serial_k32": 1.6,
//!                "sparse_over_serial_k128": 3.8,
//!                "sparse_parallel_over_sparse_k128": 2.4,
//!                "sparse_parallel_over_parallel_k128": 1.7,
//!                "alias_over_sparse_k128": 1.3,
//!                "alias_over_sparse_parallel_k128": 0.9 }
//! }
//! ```
//!
//! Runs at quick scale by default; `--paper` / `RHEOTEX_SCALE=paper`
//! enlarges the corpus and sweep budget. `--threads N` sets the parallel
//! variants' worker count for the joint engines and the top of the scan
//! thread grid (default 4). `--scan-docs N` / `--scan-tokens-per-doc N`
//! override the kernel-scan corpus shape (deterministic for a given
//! shape; grown by default so the K=128 rows are not sub-second).
//! `--baseline FILE` compares every `tokens_per_sec` figure of this run
//! against a previously committed report: the single-threaded LDA scan
//! rows (`kernel_scan.k*.serial` / `.sparse`) FAIL the run (exit 1,
//! `::error ::`) when more than 20 % below the baseline — they are the
//! least noisy figures — while every other figure only prints a
//! `::warning ::` line (multi-threaded timing on shared CI runners is
//! too noisy to gate on). Timings are best-of-3; the correctness claims
//! behind the comparison (thread-count invariance, cached == uncached
//! bitwise, sparse == serial statistically) are pinned by
//! `crates/core/tests`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex::core::gmm::{GmmConfig, GmmModel};
use rheotex::core::lda::{LdaConfig, LdaModel};
use rheotex::core::{
    FitOptions, GibbsKernel, HealthPolicy, JointConfig, JointTopicModel, ModelDoc,
};
use rheotex::corpus::features::gel_info_vector;
use rheotex_bench::Scale;
use rheotex_linalg::Vector;
use rheotex_obs::{EventKind, MemorySink, Obs};
use std::path::PathBuf;
use std::time::Instant;

const VOCAB: usize = 12;
const TOPICS: usize = 8;
const REPS: usize = 3;

/// Kernel-scan corpus shape: a vocabulary wide enough that each word
/// concentrates in few topics (the regime the sparse kernels' `q` bucket
/// exploits). Doc count and tokens-per-doc are knobs (`--scan-docs`,
/// `--scan-tokens-per-doc`) defaulting per scale, sized so the K=128
/// rows take whole seconds — a sub-second delta drowns in timer noise.
/// The generator is deterministic for a given shape.
const SCAN_VOCAB: usize = 512;
const SCAN_KS: [usize; 3] = [8, 32, 128];
/// Thread grid for the scan's threaded rows: 0 (auto, one worker on a
/// pool) plus explicit 2 and 4. The sparse-parallel kernel runs at every
/// grid point; the dense parallel kernel only at the nonzero ones (its
/// `threads == 0` case is the serial row already in the scan).
const SCAN_THREADS: [usize; 3] = [0, 2, 4];

fn synth_docs(n: usize) -> Vec<ModelDoc> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            use rand::Rng;
            let band = i % 4;
            let conc = 0.005 * (band + 1) as f64 * rng.gen_range(0.9..1.1);
            let terms: Vec<usize> = (0..3).map(|t| (band * 3 + t) % VOCAB).collect();
            ModelDoc::new(
                i as u64,
                terms,
                gel_info_vector(&[conc, 0.0, 0.0]),
                Vector::full(6, 9.2),
            )
        })
        .collect()
}

/// Kernel-scan corpus: each document samples its tokens from a narrow
/// 16-word window of the 512-word vocabulary, giving the topical locality
/// real recipe text has (a texture term co-occurs with few topics).
fn scan_docs(n_docs: usize, tokens_per_doc: usize) -> Vec<ModelDoc> {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    (0..n_docs)
        .map(|i| {
            use rand::Rng;
            let window = (i * 37) % SCAN_VOCAB;
            let terms: Vec<usize> = (0..tokens_per_doc)
                .map(|_| (window + rng.gen_range(0..16)) % SCAN_VOCAB)
                .collect();
            ModelDoc::new(
                i as u64,
                terms,
                gel_info_vector(&[0.01, 0.0, 0.0]),
                Vector::full(6, 9.2),
            )
        })
        .collect()
}

/// Best-of-`REPS` wall time of `f`, in seconds.
fn time_best(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn engine_entry(
    wall: f64,
    sweeps: usize,
    tokens: usize,
    threads: usize,
    cache_hit_rate: Option<f64>,
) -> serde_json::Value {
    serde_json::json!({
        "threads": threads,
        "wall_secs": wall,
        "sweeps_per_sec": sweeps as f64 / wall,
        "tokens_per_sec": (tokens * sweeps) as f64 / wall,
        "cache_hit_rate": cache_hit_rate,
    })
}

/// Sums the `cache_lookups` / `cache_hits` sweep-event fields of one
/// observed fit and returns hits/lookups (None when the engine never
/// consulted the cache).
fn observed_hit_rate(f: impl FnOnce(&mut Obs)) -> Option<f64> {
    let sink = MemorySink::default();
    let mut obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
    f(&mut obs);
    let (mut lookups, mut hits) = (0.0f64, 0.0f64);
    for e in sink.events_of(EventKind::Sweep) {
        lookups += e.field_f64("cache_lookups").unwrap_or(0.0);
        hits += e.field_f64("cache_hits").unwrap_or(0.0);
    }
    (lookups > 0.0).then(|| hits / lookups)
}

/// One topic count's worth of kernel-scan rows: serial and sparse at
/// `threads == 0`, the dense parallel kernel over the nonzero grid
/// points, and the sparse-parallel and alias kernels over the whole
/// thread grid.
struct ScanRows {
    serial: f64,
    sparse: f64,
    /// `(threads, wall_secs)` per nonzero entry of [`SCAN_THREADS`].
    parallel: Vec<(usize, f64)>,
    /// `(threads, wall_secs)` per entry of [`SCAN_THREADS`].
    sparse_parallel: Vec<(usize, f64)>,
    /// `(threads, wall_secs)` per entry of [`SCAN_THREADS`].
    alias: Vec<(usize, f64)>,
}

/// Times the five LDA kernels at `k` topics on the scan corpus across
/// the [`SCAN_THREADS`] grid.
fn scan_at(k: usize, docs: &[ModelDoc], sweeps: usize) -> ScanRows {
    let cfg = LdaConfig {
        n_topics: k,
        vocab_size: SCAN_VOCAB,
        alpha: 0.1,
        gamma: 0.05,
        sweeps,
        burn_in: sweeps / 2,
    };
    let lda = LdaModel::new(cfg).expect("lda config");
    let serial = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        lda.fit_with(&mut rng, docs, FitOptions::new()).unwrap();
    });
    let sparse = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        lda.fit_with(
            &mut rng,
            docs,
            FitOptions::new().kernel(GibbsKernel::Sparse),
        )
        .unwrap();
    });
    let mut parallel = Vec::new();
    for t in SCAN_THREADS.into_iter().filter(|&t| t > 0) {
        let wall = time_best(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            lda.fit_with(
                &mut rng,
                docs,
                FitOptions::new().kernel(GibbsKernel::Parallel).threads(t),
            )
            .unwrap();
        });
        parallel.push((t, wall));
    }
    let mut sparse_parallel = Vec::new();
    for t in SCAN_THREADS {
        let wall = time_best(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            lda.fit_with(
                &mut rng,
                docs,
                FitOptions::new()
                    .kernel(GibbsKernel::SparseParallel)
                    .threads(t),
            )
            .unwrap();
        });
        sparse_parallel.push((t, wall));
    }
    let mut alias = Vec::new();
    for t in SCAN_THREADS {
        let wall = time_best(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            lda.fit_with(
                &mut rng,
                docs,
                FitOptions::new().kernel(GibbsKernel::Alias).threads(t),
            )
            .unwrap();
        });
        alias.push((t, wall));
    }
    ScanRows {
        serial,
        sparse,
        parallel,
        sparse_parallel,
        alias,
    }
}

/// Times a plain vs. supervised LDA fit at `k` topics on the scan corpus
/// under the default recovery cadence (audit every 16 sweeps, snapshot
/// every 8) and reports the supervisor's fractional overhead. The
/// per-sweep sentinels and sampled deep audit are advertised as < 5 %
/// of wall time — this is the figure that claim is checked against.
fn health_overhead_at(
    k: usize,
    docs: &[ModelDoc],
    sweeps: usize,
    kernel: GibbsKernel,
) -> serde_json::Value {
    let cfg = LdaConfig {
        n_topics: k,
        vocab_size: SCAN_VOCAB,
        alpha: 0.1,
        gamma: 0.05,
        sweeps,
        burn_in: sweeps / 2,
    };
    let lda = LdaModel::new(cfg).expect("lda config");
    let plain = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        lda.fit_with(&mut rng, docs, FitOptions::new().kernel(kernel))
            .unwrap();
    });
    let supervised = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        lda.fit_with(
            &mut rng,
            docs,
            FitOptions::new()
                .kernel(kernel)
                .health(HealthPolicy::recover()),
        )
        .unwrap();
    });
    let overhead = supervised / plain - 1.0;
    if overhead > 0.05 {
        println!(
            "::warning ::health supervision overhead {:.1}% on lda k{k} {kernel:?} \
             exceeds the 5% budget",
            overhead * 100.0
        );
    }
    serde_json::json!({
        "plain_wall_secs": plain,
        "supervised_wall_secs": supervised,
        "overhead_frac": overhead,
    })
}

/// Provenance stamped into every report: the commit the binary was built
/// from, the CPU it ran on, the host's hardware thread count, and the
/// kernel-scan corpus shape (so a baseline produced from a differently
/// sized corpus is recognisable at a glance even though the schema gate
/// would already skip the comparison). Each environment field degrades
/// to `"unknown"` (or 0) rather than failing — a missing `.git`
/// directory or a non-Linux host must not break the bench.
fn bench_meta(scan_n_docs: usize, scan_tokens_per_doc: usize) -> serde_json::Value {
    let git_describe = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':'))
                .map(|(_, v)| v.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let host_threads = std::thread::available_parallelism().map_or(0, usize::from);
    serde_json::json!({
        "git_describe": git_describe,
        "cpu_model": cpu_model,
        "host_threads": host_threads,
        "scan_corpus": {
            "docs": scan_n_docs,
            "tokens_per_doc": scan_tokens_per_doc,
            "vocab": SCAN_VOCAB,
        },
    })
}

/// Collects every `tokens_per_sec` leaf in a report, keyed by the JSON
/// path of the object that holds it (`engines.joint_serial`, …).
fn tokens_per_sec_leaves(prefix: &str, v: &serde_json::Value, out: &mut Vec<(String, f64)>) {
    if let serde_json::Value::Object(map) = v {
        if let Some(tps) = map
            .get("tokens_per_sec")
            .and_then(serde_json::Value::as_f64)
        {
            out.push((prefix.to_string(), tps));
        }
        for (key, val) in map {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            tokens_per_sec_leaves(&path, val, out);
        }
    }
}

/// True for the throughput figures stable enough to gate a merge on:
/// the single-threaded LDA kernel-scan rows. Multi-threaded rows and
/// the small joint/GMM corpus are too noisy on shared CI runners.
fn gates_the_run(leaf: &str) -> bool {
    leaf.starts_with("kernel_scan.") && (leaf.ends_with(".serial") || leaf.ends_with(".sparse"))
}

/// Compares this run's throughput figures against a committed baseline
/// report and returns the number of *gating* regressions (the caller
/// exits non-zero when it is positive). Regressions beyond 20 % on the
/// `kernel_scan.k*.serial` / `.sparse` rows print a GitHub Actions
/// `::error ::` annotation and fail the run; every other figure only
/// prints a `::warning ::` — the warning is the review signal there.
fn compare_with_baseline(report: &serde_json::Value, path: &str) -> usize {
    let baseline: serde_json::Value = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline {path}: {e}; skipping the regression check");
            return 0;
        }
    };
    if baseline["schema"] != report["schema"] {
        eprintln!(
            "baseline {path} has schema {}, this run wrote {}; skipping the regression check",
            baseline["schema"], report["schema"]
        );
        return 0;
    }
    let mut base_leaves = Vec::new();
    tokens_per_sec_leaves("", &baseline, &mut base_leaves);
    let mut cur_leaves = Vec::new();
    tokens_per_sec_leaves("", report, &mut cur_leaves);
    let mut regressions = 0usize;
    let mut failures = 0usize;
    for (leaf, cur) in &cur_leaves {
        let Some((_, base)) = base_leaves.iter().find(|(b, _)| b == leaf) else {
            continue;
        };
        if *cur < 0.8 * base {
            regressions += 1;
            let pct = (1.0 - cur / base) * 100.0;
            if gates_the_run(leaf) {
                failures += 1;
                println!(
                    "::error ::gibbs bench regression: {leaf} at {cur:.0} tokens/sec, \
                     {pct:.0}% below the committed baseline ({base:.0}); \
                     single-threaded scan rows gate the run"
                );
            } else {
                println!(
                    "::warning ::gibbs bench regression: {leaf} at {cur:.0} tokens/sec, \
                     {pct:.0}% below the committed baseline ({base:.0})"
                );
            }
        }
    }
    eprintln!(
        "baseline check: {} figures compared, {regressions} regressed > 20% \
         ({failures} on gating rows)",
        cur_leaves.len()
    );
    failures
}

fn main() {
    let scale = Scale::from_env_and_args();
    // Scan-corpus defaults per scale: large enough that the K=128 rows
    // take whole seconds, so the sparse-parallel deltas are measurable.
    let (n_docs, sweeps, scan_sweeps, default_scan_docs, default_scan_tpd) = match scale {
        Scale::Paper => (3000, 100, 25, 3072, 64),
        Scale::Quick => (400, 20, 8, 1536, 48),
    };
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let threads = flag_val("--threads").unwrap_or(4);
    let scan_n_docs = flag_val("--scan-docs").unwrap_or(default_scan_docs);
    let scan_tokens_per_doc = flag_val("--scan-tokens-per-doc").unwrap_or(default_scan_tpd);
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let docs = synth_docs(n_docs);
    let tokens: usize = docs.iter().map(|d| d.terms.len()).sum();
    let joint_cfg = JointConfig {
        n_topics: TOPICS,
        sweeps,
        burn_in: sweeps / 2,
        ..JointConfig::paper_default(VOCAB)
    };
    let joint = JointTopicModel::new(joint_cfg).expect("joint config");
    let mut gmm_cfg = GmmConfig::new(TOPICS);
    gmm_cfg.sweeps = sweeps;
    let gmm = GmmModel::new(gmm_cfg).expect("gmm config");

    eprintln!(
        "benchmarking {n_docs} docs ({tokens} tokens), {sweeps} sweeps, \
         parallel variant at {threads} threads…"
    );

    let serial = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        joint.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
    });
    let parallel = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        joint
            .fit_with(&mut rng, &docs, FitOptions::new().threads(threads))
            .unwrap();
    });
    let sparse_joint = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        joint
            .fit_with(
                &mut rng,
                &docs,
                FitOptions::new().kernel(GibbsKernel::Sparse),
            )
            .unwrap();
    });
    let cached = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        gmm.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
    });
    let uncached = time_best(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        gmm.fit_with(&mut rng, &docs, FitOptions::new().predictive_cache(false))
            .unwrap();
    });
    let gmm_hit_rate = observed_hit_rate(|obs| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        gmm.fit_with(&mut rng, &docs, FitOptions::new().observer(obs))
            .unwrap();
    });

    let scan_corpus = scan_docs(scan_n_docs, scan_tokens_per_doc);
    let scan_tokens: usize = scan_corpus.iter().map(|d| d.terms.len()).sum();
    eprintln!(
        "kernel scan: {scan_n_docs} docs x {scan_tokens_per_doc} tokens \
         ({scan_tokens} total), vocab {SCAN_VOCAB}, {scan_sweeps} sweeps, \
         K in {SCAN_KS:?}, threads in {SCAN_THREADS:?}…"
    );
    let mut kernel_scan = serde_json::json!({
        "docs": scan_n_docs,
        "tokens": scan_tokens,
        "tokens_per_doc": scan_tokens_per_doc,
        "vocab": SCAN_VOCAB,
        "sweeps": scan_sweeps,
    });
    let top_threads = *SCAN_THREADS.iter().max().expect("nonempty grid");
    let mut scan_speedups = Vec::with_capacity(SCAN_KS.len());
    for k in SCAN_KS {
        let rows = scan_at(k, &scan_corpus, scan_sweeps);
        let mut entry = serde_json::json!({
            "serial": engine_entry(rows.serial, scan_sweeps, scan_tokens, 0, None),
            "sparse": engine_entry(rows.sparse, scan_sweeps, scan_tokens, 0, None),
        });
        for &(t, wall) in &rows.parallel {
            entry[format!("parallel_t{t}")] = engine_entry(wall, scan_sweeps, scan_tokens, t, None);
        }
        for &(t, wall) in &rows.sparse_parallel {
            entry[format!("sparse_parallel_t{t}")] =
                engine_entry(wall, scan_sweeps, scan_tokens, t, None);
        }
        for &(t, wall) in &rows.alias {
            entry[format!("alias_t{t}")] = engine_entry(wall, scan_sweeps, scan_tokens, t, None);
        }
        kernel_scan[format!("k{k}")] = entry;
        // Head-to-head figures at the top of the thread grid: the
        // composed kernels against their parents, plus the alias
        // kernel's single-worker row against single-threaded sparse
        // (the O(1)-amortized-draw claim).
        let par_top = rows
            .parallel
            .iter()
            .find(|(t, _)| *t == top_threads)
            .map(|(_, w)| *w)
            .expect("parallel row at top threads");
        let sp_top = rows
            .sparse_parallel
            .iter()
            .find(|(t, _)| *t == top_threads)
            .map(|(_, w)| *w)
            .expect("sparse-parallel row at top threads");
        let alias_t0 = rows
            .alias
            .iter()
            .find(|(t, _)| *t == 0)
            .map(|(_, w)| *w)
            .expect("alias row at threads 0");
        let alias_top = rows
            .alias
            .iter()
            .find(|(t, _)| *t == top_threads)
            .map(|(_, w)| *w)
            .expect("alias row at top threads");
        scan_speedups.push((
            k,
            rows.serial / rows.sparse,
            rows.sparse / sp_top,
            par_top / sp_top,
            rows.sparse / alias_t0,
            sp_top / alias_top,
        ));
        eprintln!(
            "  K={k:<4} serial {:.3}s, sparse {:.3}s ({:.2}x), \
             parallel(t{top_threads}) {par_top:.3}s, \
             sparse-parallel(t{top_threads}) {sp_top:.3}s \
             ({:.2}x over sparse, {:.2}x over parallel), \
             alias(t0) {alias_t0:.3}s ({:.2}x over sparse), \
             alias(t{top_threads}) {alias_top:.3}s ({:.2}x over sparse-parallel)",
            rows.serial,
            rows.sparse,
            rows.serial / rows.sparse,
            rows.sparse / sp_top,
            par_top / sp_top,
            rows.sparse / alias_t0,
            sp_top / alias_top
        );
        if k == *SCAN_KS.last().expect("nonempty scan grid") && alias_t0 > rows.sparse {
            println!(
                "::warning ::alias kernel at {:.2}x over single-threaded sparse at K={k} \
                 (target >= 1.0x); see the alias profile events for rebuild vs. draw time",
                rows.sparse / alias_t0
            );
        }
    }

    eprintln!("health supervision overhead: lda K=32 scan shape, default recover cadence…");
    let health_serial = health_overhead_at(32, &scan_corpus, scan_sweeps, GibbsKernel::Serial);
    let health_sparse = health_overhead_at(32, &scan_corpus, scan_sweeps, GibbsKernel::Sparse);
    let health = serde_json::json!({
        "policy": { "audit_every": 16, "snapshot_every": 8 },
        "lda_k32_serial": health_serial,
        "lda_k32_sparse": health_sparse,
    });

    let mut speedup = serde_json::json!({
        "joint_parallel_over_serial": serial / parallel,
        "joint_sparse_over_serial": serial / sparse_joint,
        "gmm_cached_over_uncached": uncached / cached,
    });
    for (k, s, sp_over_sparse, sp_over_parallel, alias_over_sparse, alias_over_sp) in
        &scan_speedups
    {
        speedup[format!("sparse_over_serial_k{k}")] = serde_json::json!(s);
        speedup[format!("sparse_parallel_over_sparse_k{k}")] = serde_json::json!(sp_over_sparse);
        speedup[format!("sparse_parallel_over_parallel_k{k}")] =
            serde_json::json!(sp_over_parallel);
        speedup[format!("alias_over_sparse_k{k}")] = serde_json::json!(alias_over_sparse);
        speedup[format!("alias_over_sparse_parallel_k{k}")] = serde_json::json!(alias_over_sp);
    }

    let report = serde_json::json!({
        "schema": "rheotex.bench.gibbs/6",
        "meta": bench_meta(scan_n_docs, scan_tokens_per_doc),
        "corpus": { "docs": n_docs, "tokens": tokens, "vocab": VOCAB, "topics": TOPICS },
        "sweeps": sweeps,
        "engines": {
            "joint_serial": engine_entry(serial, sweeps, tokens, 0, None),
            "joint_parallel": engine_entry(parallel, sweeps, tokens, threads, None),
            "joint_sparse": engine_entry(sparse_joint, sweeps, tokens, 0, None),
            "gmm_cached": engine_entry(cached, sweeps, tokens, 0, gmm_hit_rate),
            "gmm_uncached": engine_entry(uncached, sweeps, tokens, 0, Some(0.0)),
        },
        "kernel_scan": kernel_scan,
        "health": health,
        "speedup": speedup,
    });

    let dir = std::env::var("RHEOTEX_METRICS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let path = dir.join("BENCH_gibbs.json");
    let write = std::fs::create_dir_all(&dir).and_then(|()| {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&report).expect("serialize report"),
        )
    });
    match write {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    let gating_failures = baseline.map_or(0, |b| compare_with_baseline(&report, &b));

    println!(
        "joint: serial {:.2}s, parallel({threads}) {:.2}s ({:.2}x), sparse {:.2}s ({:.2}x)",
        serial,
        parallel,
        serial / parallel,
        sparse_joint,
        serial / sparse_joint
    );
    println!(
        "gmm:   uncached {:.2}s, cached {:.2}s ({:.2}x, hit rate {})",
        uncached,
        cached,
        uncached / cached,
        gmm_hit_rate.map_or("n/a".to_string(), |r| format!("{r:.3}"))
    );
    for (k, s, sp_over_sparse, sp_over_parallel, alias_over_sparse, alias_over_sp) in
        &scan_speedups
    {
        println!(
            "lda scan K={k}: sparse over serial {s:.2}x; sparse-parallel(t{top_threads}) \
             {sp_over_sparse:.2}x over sparse, {sp_over_parallel:.2}x over parallel; \
             alias(t0) {alias_over_sparse:.2}x over sparse, \
             alias(t{top_threads}) {alias_over_sp:.2}x over sparse-parallel"
        );
    }
    for (name, entry) in [("serial", &health_serial), ("sparse", &health_sparse)] {
        println!(
            "health K=32 {name}: supervision overhead {:.1}%",
            entry["overhead_frac"].as_f64().unwrap_or(f64::NAN) * 100.0
        );
    }
    if gating_failures > 0 {
        eprintln!(
            "error: {gating_failures} gating throughput figures regressed more than 20% \
             below the committed baseline"
        );
        std::process::exit(1);
    }
}

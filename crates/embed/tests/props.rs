//! Property-based tests for the embedding substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_embed::{SgnsConfig, Vocab, Word2Vec};

fn sentences_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(proptest::collection::vec("[a-e]{1,3}", 0..8), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Vocabulary counts always sum to the number of kept tokens, and
    /// every word respects min_count.
    #[test]
    fn vocab_counts_consistent(sents in sentences_strategy(), min_count in 1u64..4) {
        let v = Vocab::build(&sents, min_count, f64::INFINITY);
        let mut total = 0;
        for i in 0..v.len() {
            prop_assert!(v.count(i) >= min_count);
            prop_assert_eq!(v.lookup(v.word(i)), Some(i));
            total += v.count(i);
        }
        prop_assert_eq!(total, v.total_tokens());
    }

    /// Keep probabilities are valid probabilities and monotone in
    /// frequency (more frequent → no higher keep probability).
    #[test]
    fn subsampling_probabilities_valid(sents in sentences_strategy(), t in 1e-5..1e-1f64) {
        let v = Vocab::build(&sents, 1, t);
        for i in 0..v.len() {
            let p = v.keep_prob(i);
            prop_assert!((0.0..=1.0).contains(&p));
        }
        // Words are sorted by descending count, so keep_prob is
        // non-decreasing along the index order.
        for i in 1..v.len() {
            if v.count(i - 1) > v.count(i) {
                prop_assert!(v.keep_prob(i - 1) <= v.keep_prob(i) + 1e-12);
            }
        }
    }

    /// Negative sampling always returns a valid index for u ∈ [0, 1).
    #[test]
    fn negative_sampling_in_range(sents in sentences_strategy(), u in 0.0..1.0f64) {
        let v = Vocab::build(&sents, 1, f64::INFINITY);
        prop_assume!(!v.is_empty());
        prop_assert!(v.negative_sample(u) < v.len());
    }

    /// Training never panics and produces finite embeddings, whatever the
    /// (small) corpus.
    #[test]
    fn training_is_total(sents in sentences_strategy(), seed in 0u64..50) {
        let config = SgnsConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 2,
            min_count: 1,
            subsample_t: f64::INFINITY,
            ..SgnsConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = Word2Vec::train(&mut rng, &sents, &config);
        for i in 0..model.vocab().len() {
            prop_assert!(model.embedding(i).iter().all(|v| v.is_finite()));
        }
        // Similarity queries stay bounded.
        if model.vocab().len() >= 2 {
            let a = model.vocab().word(0).to_string();
            for (_, s) in model.most_similar(&a, 5) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
            }
        }
    }
}

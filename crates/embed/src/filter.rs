//! The gel-relatedness filter over texture terms.
//!
//! Paper, Section III-A: *"All the descriptions of retrieved posted
//! recipes are trained by word2vec. Then, if similar words to the
//! extracted texture terms include ingredient terms unrelated to gel, the
//! texture terms are excluded."* — e.g. a mousse recipe with a nut topping
//! produces "crispy", whose neighbourhood contains "nuts".
//!
//! [`GelRelatednessFilter`] implements the paper's decision directly: a
//! term is excluded when an unrelated-ingredient word appears among its
//! top-`k` neighbours (above a small noise floor). Two robustness knobs
//! exist for small corpora, where rare terms have noisy embeddings:
//! terms too rare for the word2vec vocabulary are kept (no evidence), and
//! an optional *gel-protection margin* keeps a term whose best
//! gel-ingredient similarity beats the offending neighbour by the margin.
//! The protection is off by default — confounder terms also co-occur with
//! gel words (toppings sit on gelatin desserts), so at healthy corpus
//! sizes the unprotected rule is both the paper's and the more accurate
//! one.

use crate::model::Word2Vec;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Filter parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// How many nearest neighbours to inspect per term.
    pub top_k: usize,
    /// Ignore neighbours below this cosine similarity (very weak
    /// neighbours carry no evidence either way).
    pub min_similarity: f64,
    /// When `Some(m)`, a term is kept despite an offending neighbour if
    /// its best gel-word similarity exceeds that neighbour's by at least
    /// `m`. `None` (default) disables the protection — the paper-faithful
    /// rule.
    pub gel_protection_margin: Option<f64>,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            top_k: 8,
            // Mean-centered similarities on realistic corpus sizes put
            // planted co-occurrence at ~0.2–0.3 and noise near 0.1.
            min_similarity: 0.15,
            gel_protection_margin: None,
        }
    }
}

/// The decision for one term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterOutcome {
    /// The texture term examined.
    pub term: String,
    /// `true` if the term is kept (gel-related).
    pub keep: bool,
    /// Best similarity to a gel-ingredient word (`None` if no gel word is
    /// in vocabulary).
    pub gel_similarity: Option<f64>,
    /// Unrelated-ingredient neighbours that triggered exclusion (empty
    /// when kept), with their similarities.
    pub offending_neighbors: Vec<(String, f64)>,
}

/// Decides gel-relatedness of texture terms from embedding neighbourhoods.
#[derive(Debug, Clone)]
pub struct GelRelatednessFilter {
    unrelated_words: HashSet<String>,
    gel_words: HashSet<String>,
    config: FilterConfig,
}

impl GelRelatednessFilter {
    /// Creates a filter given the unrelated-ingredient words to watch for
    /// and the gel-ingredient words to contrast against (both lowercased).
    #[must_use]
    pub fn new(
        unrelated_words: impl IntoIterator<Item = String>,
        gel_words: impl IntoIterator<Item = String>,
        config: FilterConfig,
    ) -> Self {
        Self {
            unrelated_words: unrelated_words
                .into_iter()
                .map(|w| w.to_lowercase())
                .collect(),
            gel_words: gel_words.into_iter().map(|w| w.to_lowercase()).collect(),
            config,
        }
    }

    /// The watched unrelated-ingredient words.
    #[must_use]
    pub fn unrelated_words(&self) -> &HashSet<String> {
        &self.unrelated_words
    }

    /// The gel-ingredient contrast words.
    #[must_use]
    pub fn gel_words(&self) -> &HashSet<String> {
        &self.gel_words
    }

    /// Evaluates one term. Terms absent from the embedding vocabulary are
    /// kept (no evidence against them — they were too rare for word2vec).
    #[must_use]
    pub fn evaluate(&self, model: &Word2Vec, term: &str) -> FilterOutcome {
        let gel_similarity = self
            .gel_words
            .iter()
            .filter_map(|g| model.similarity(term, g))
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });

        let neighbors = model.most_similar(term, self.config.top_k);
        let offending: Vec<(String, f64)> = neighbors
            .into_iter()
            .filter(|(w, s)| {
                let protected = match (self.config.gel_protection_margin, gel_similarity) {
                    (Some(margin), Some(g)) => g >= *s + margin,
                    _ => false,
                };
                *s >= self.config.min_similarity && self.unrelated_words.contains(w) && !protected
            })
            .collect();
        let keep = offending.is_empty();
        FilterOutcome {
            term: term.to_string(),
            keep,
            gel_similarity,
            offending_neighbors: offending,
        }
    }

    /// Evaluates many terms, returning the kept subset and the full
    /// outcome log.
    #[must_use]
    pub fn filter_terms(
        &self,
        model: &Word2Vec,
        terms: &[String],
    ) -> (Vec<String>, Vec<FilterOutcome>) {
        let outcomes: Vec<FilterOutcome> = terms.iter().map(|t| self.evaluate(model, t)).collect();
        let kept = outcomes
            .iter()
            .filter(|o| o.keep)
            .map(|o| o.term.clone())
            .collect();
        (kept, outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SgnsConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Corpus where "karikari" always co-occurs with nut toppings and
    /// "purupuru" with gel words — the structure the paper's filter
    /// exploits.
    fn corpus() -> Vec<Vec<String>> {
        let mut sents = Vec::new();
        for i in 0..400 {
            let s: &str = if i % 2 == 0 {
                "gelatin purupuru milk jelly gelatin purupuru"
            } else {
                "almond karikari topping almond karikari crunch"
            };
            sents.push(s.split_whitespace().map(str::to_string).collect());
        }
        sents
    }

    fn model() -> Word2Vec {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let config = SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 4,
            learning_rate: 0.05,
            epochs: 10,
            subsample_t: f64::INFINITY,
            min_count: 1,
        };
        Word2Vec::train(&mut rng, &corpus(), &config)
    }

    fn filter() -> GelRelatednessFilter {
        GelRelatednessFilter::new(
            ["almond".to_string(), "cookie".to_string()],
            [
                "gelatin".to_string(),
                "kanten".to_string(),
                "agar".to_string(),
            ],
            FilterConfig::default(),
        )
    }

    #[test]
    fn confounder_term_excluded() {
        let m = model();
        let out = filter().evaluate(&m, "karikari");
        assert!(!out.keep, "karikari should be excluded: {out:?}");
        assert!(out.offending_neighbors.iter().any(|(w, _)| w == "almond"));
    }

    #[test]
    fn gel_term_kept() {
        let m = model();
        let out = filter().evaluate(&m, "purupuru");
        assert!(out.keep, "purupuru should be kept: {out:?}");
        assert!(out.offending_neighbors.is_empty());
        // What matters for the contrast guard is the *ordering*: purupuru
        // must sit closer to its gel than to the nut topping. (The
        // absolute value is small — centered second-order similarity in an
        // 8-word toy vocabulary carries little mass.)
        let gel = out.gel_similarity.expect("gelatin in vocabulary");
        let almond = m.similarity("purupuru", "almond").unwrap();
        assert!(gel > almond, "gel {gel:.3} vs almond {almond:.3}");
    }

    #[test]
    fn gel_protection_margin_can_save_anchored_terms() {
        // Declare "milk" unrelated to force an offending neighbour for
        // purupuru (they co-occur constantly). Unprotected, purupuru is
        // excluded; with a protective margin of -1 (gel similarity always
        // wins), it survives.
        let m = model();
        let unprotected = GelRelatednessFilter::new(
            ["milk".to_string()],
            ["gelatin".to_string()],
            FilterConfig {
                min_similarity: 0.0,
                gel_protection_margin: None,
                ..FilterConfig::default()
            },
        );
        assert!(!unprotected.evaluate(&m, "purupuru").keep);
        let protected = GelRelatednessFilter::new(
            ["milk".to_string()],
            ["gelatin".to_string()],
            FilterConfig {
                min_similarity: 0.0,
                gel_protection_margin: Some(-1.0),
                ..FilterConfig::default()
            },
        );
        assert!(protected.evaluate(&m, "purupuru").keep);
        // Protection never applies without gel words in vocabulary.
        let no_gel = GelRelatednessFilter::new(
            ["milk".to_string()],
            Vec::<String>::new(),
            FilterConfig {
                min_similarity: 0.0,
                gel_protection_margin: Some(-1.0),
                ..FilterConfig::default()
            },
        );
        assert!(!no_gel.evaluate(&m, "purupuru").keep);
    }

    #[test]
    fn oov_terms_kept_by_default() {
        let m = model();
        let out = filter().evaluate(&m, "nosuchterm");
        assert!(out.keep);
        assert!(out.gel_similarity.is_none());
    }

    #[test]
    fn filter_terms_partitions() {
        let m = model();
        let terms = vec![
            "purupuru".to_string(),
            "karikari".to_string(),
            "unknown".to_string(),
        ];
        let (kept, outcomes) = filter().filter_terms(&m, &terms);
        assert_eq!(outcomes.len(), 3);
        assert!(kept.contains(&"purupuru".to_string()));
        assert!(!kept.contains(&"karikari".to_string()));
        assert!(kept.contains(&"unknown".to_string()));
    }

    #[test]
    fn similarity_floor_blocks_weak_evidence() {
        let m = model();
        let strict = GelRelatednessFilter::new(
            ["almond".to_string()],
            Vec::<String>::new(),
            FilterConfig {
                min_similarity: 0.999, // nothing is that similar
                ..FilterConfig::default()
            },
        );
        assert!(strict.evaluate(&m, "karikari").keep);
    }

    #[test]
    fn words_are_lowercased() {
        let f = GelRelatednessFilter::new(
            ["ALMOND".to_string()],
            ["GELATIN".to_string()],
            FilterConfig::default(),
        );
        assert!(f.unrelated_words().contains("almond"));
        assert!(f.gel_words().contains("gelatin"));
    }
}

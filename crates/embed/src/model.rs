//! Skip-gram with negative sampling (SGNS).
//!
//! A faithful, dependency-free implementation of the word2vec training
//! objective: for each (center, context) pair within a dynamic window,
//! maximize `log σ(v_c · u_o) + Σ_neg log σ(−v_c · u_n)` by SGD with a
//! linearly decaying learning rate. Deterministic given the RNG seed.

use crate::vocab::Vocab;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum (dynamic) context window radius.
    pub window: usize,
    /// Number of negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub learning_rate: f64,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Subsampling threshold `t` (see [`Vocab::build`]); `INFINITY`
    /// disables subsampling.
    pub subsample_t: f64,
    /// Minimum word count for vocabulary inclusion.
    pub min_count: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window: 4,
            negatives: 5,
            learning_rate: 0.05,
            epochs: 8,
            subsample_t: 1e-3,
            min_count: 3,
        }
    }
}

/// A trained word2vec model: vocabulary plus input/output embedding
/// matrices (row-major, `vocab_len × dim`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Word2Vec {
    vocab: Vocab,
    dim: usize,
    input: Vec<f32>,
    output: Vec<f32>,
}

fn sigmoid(x: f64) -> f64 {
    // Clamp like word2vec's MAX_EXP table: gradients saturate anyway.
    let x = x.clamp(-8.0, 8.0);
    1.0 / (1.0 + (-x).exp())
}

impl Word2Vec {
    /// Trains a model on tokenized sentences.
    ///
    /// # Panics
    /// Panics if `config.dim == 0` (programming error).
    pub fn train<R: Rng + ?Sized>(
        rng: &mut R,
        sentences: &[Vec<String>],
        config: &SgnsConfig,
    ) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        let vocab = Vocab::build(sentences, config.min_count, config.subsample_t);
        let n = vocab.len();
        let dim = config.dim;

        // word2vec init: input uniform in ±0.5/dim, output zero.
        let mut input = vec![0.0f32; n * dim];
        for w in &mut input {
            *w = ((rng.gen_range(0.0..1.0) - 0.5) / dim as f64) as f32;
        }
        let output = vec![0.0f32; n * dim];

        let mut model = Self {
            vocab,
            dim,
            input,
            output,
        };
        if n == 0 {
            return model;
        }

        // Pre-map sentences to vocabulary ids once.
        let id_sentences: Vec<Vec<usize>> = sentences
            .iter()
            .map(|s| s.iter().filter_map(|t| model.vocab.lookup(t)).collect())
            .collect();

        let total_pairs_estimate: u64 =
            (id_sentences.iter().map(Vec::len).sum::<usize>() as u64).max(1) * config.epochs as u64;
        let mut processed: u64 = 0;
        let mut grad_buf = vec![0.0f32; dim];

        for _epoch in 0..config.epochs {
            for sent in &id_sentences {
                // Subsample per epoch (fresh randomness each pass).
                let kept: Vec<usize> = sent
                    .iter()
                    .copied()
                    .filter(|&w| {
                        let p = model.vocab.keep_prob(w);
                        p >= 1.0 || rng.gen_range(0.0..1.0) < p
                    })
                    .collect();
                for (pos, &center) in kept.iter().enumerate() {
                    processed += 1;
                    let progress = processed as f64 / total_pairs_estimate as f64;
                    let lr =
                        (config.learning_rate * (1.0 - progress)).max(config.learning_rate * 1e-4);
                    let b = rng.gen_range(0..config.window.max(1));
                    let lo = pos.saturating_sub(config.window - b);
                    let hi = (pos + config.window - b + 1).min(kept.len());
                    for (ctx_pos, &context) in kept.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        model.train_pair(rng, center, context, config.negatives, lr, &mut grad_buf);
                    }
                }
            }
        }
        model
    }

    /// One positive pair plus `negatives` negative samples.
    fn train_pair<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        center: usize,
        context: usize,
        negatives: usize,
        lr: f64,
        grad: &mut [f32],
    ) {
        let dim = self.dim;
        grad.fill(0.0);
        let c_off = center * dim;
        // Positive sample (label 1) then negatives (label 0).
        for k in 0..=negatives {
            let (target, label) = if k == 0 {
                (context, 1.0)
            } else {
                let neg = self.vocab.negative_sample(rng.gen_range(0.0..1.0));
                if neg == context {
                    continue;
                }
                (neg, 0.0)
            };
            let t_off = target * dim;
            let mut dot = 0.0f64;
            for d in 0..dim {
                dot += f64::from(self.input[c_off + d]) * f64::from(self.output[t_off + d]);
            }
            let g = (label - sigmoid(dot)) * lr;
            let gf = g as f32;
            for (d, gslot) in grad.iter_mut().enumerate().take(dim) {
                *gslot += gf * self.output[t_off + d];
                self.output[t_off + d] += gf * self.input[c_off + d];
            }
        }
        for (d, &gval) in grad.iter().enumerate().take(dim) {
            self.input[c_off + d] += gval;
        }
    }

    /// The vocabulary.
    #[must_use]
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Embedding dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Input embedding of word `i` (the standard "word vector").
    #[must_use]
    pub fn embedding(&self, i: usize) -> &[f32] {
        &self.input[i * self.dim..(i + 1) * self.dim]
    }

    /// Mean input embedding over the vocabulary. Small corpora leave a
    /// large common component in every vector (raw cosines all ≈ 1);
    /// similarity queries subtract it — the standard "all-but-the-top"
    /// correction (Mu & Viswanath 2018, component 0 only).
    #[must_use]
    pub fn mean_embedding(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.dim];
        let n = self.vocab.len();
        if n == 0 {
            return mean;
        }
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(self.embedding(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        mean
    }

    fn centered(&self, i: usize, mean: &[f32]) -> Vec<f32> {
        self.embedding(i)
            .iter()
            .zip(mean)
            .map(|(&v, &m)| v - m)
            .collect()
    }

    /// Cosine similarity between two vocabulary words on mean-centered
    /// vectors, `None` if either is out of vocabulary.
    #[must_use]
    pub fn similarity(&self, a: &str, b: &str) -> Option<f64> {
        let ia = self.vocab.lookup(a)?;
        let ib = self.vocab.lookup(b)?;
        let mean = self.mean_embedding();
        Some(cosine(&self.centered(ia, &mean), &self.centered(ib, &mean)))
    }

    /// The `k` nearest vocabulary words to `word` by mean-centered cosine
    /// similarity (excluding the word itself), best first.
    #[must_use]
    pub fn most_similar(&self, word: &str, k: usize) -> Vec<(String, f64)> {
        let Some(i) = self.vocab.lookup(word) else {
            return Vec::new();
        };
        let mean = self.mean_embedding();
        let target = self.centered(i, &mean);
        let mut sims: Vec<(usize, f64)> = (0..self.vocab.len())
            .filter(|&j| j != i)
            .map(|j| (j, cosine(&target, &self.centered(j, &mean))))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(k);
        sims.into_iter()
            .map(|(j, s)| (self.vocab.word(j).to_string(), s))
            .collect()
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(13)
    }

    /// Two disjoint "themes" of words: after training, words within a
    /// theme must be closer to each other than across themes.
    fn themed_corpus() -> Vec<Vec<String>> {
        let mut sents = Vec::new();
        let theme_a = ["gelatin", "purupuru", "milk", "jelly"];
        let theme_b = ["almond", "karikari", "cookie", "crunch"];
        for i in 0..300 {
            let theme: &[&str] = if i % 2 == 0 { &theme_a } else { &theme_b };
            // Rotate word order for variety.
            let mut s: Vec<String> = theme.iter().map(|w| (*w).to_string()).collect();
            s.rotate_left(i % theme.len());
            sents.push(s);
        }
        sents
    }

    fn quick_config() -> SgnsConfig {
        SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 4,
            learning_rate: 0.05,
            epochs: 12,
            subsample_t: f64::INFINITY,
            min_count: 1,
        }
    }

    #[test]
    fn learns_theme_structure() {
        let model = Word2Vec::train(&mut rng(), &themed_corpus(), &quick_config());
        let within = model.similarity("gelatin", "purupuru").unwrap();
        let across = model.similarity("gelatin", "karikari").unwrap();
        assert!(
            within > across + 0.2,
            "within {within:.3} vs across {across:.3}"
        );
    }

    #[test]
    fn most_similar_surfaces_theme_words() {
        let model = Word2Vec::train(&mut rng(), &themed_corpus(), &quick_config());
        let neighbours = model.most_similar("karikari", 3);
        assert_eq!(neighbours.len(), 3);
        let names: Vec<&str> = neighbours.iter().map(|(w, _)| w.as_str()).collect();
        assert!(
            names.contains(&"almond") || names.contains(&"cookie") || names.contains(&"crunch"),
            "neighbours of karikari: {names:?}"
        );
        // Results are sorted best-first.
        assert!(neighbours[0].1 >= neighbours[1].1);
    }

    #[test]
    fn oov_queries_return_empty() {
        let model = Word2Vec::train(&mut rng(), &themed_corpus(), &quick_config());
        assert!(model.most_similar("notaword", 5).is_empty());
        assert!(model.similarity("notaword", "gelatin").is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Word2Vec::train(&mut rng(), &themed_corpus(), &quick_config());
        let b = Word2Vec::train(&mut rng(), &themed_corpus(), &quick_config());
        assert_eq!(a.input, b.input);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn empty_corpus_trains_trivially() {
        let model = Word2Vec::train(&mut rng(), &[], &quick_config());
        assert_eq!(model.vocab().len(), 0);
        assert!(model.most_similar("anything", 3).is_empty());
    }

    #[test]
    fn cosine_bounds() {
        let model = Word2Vec::train(&mut rng(), &themed_corpus(), &quick_config());
        for w in ["gelatin", "almond", "milk"] {
            for (_, s) in model.most_similar(w, 10) {
                assert!((-1.0..=1.0).contains(&s), "similarity {s}");
            }
        }
    }

    #[test]
    fn sigmoid_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
    }
}

//! Vocabulary construction, subsampling, and the negative-sampling table.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Size of the pre-computed unigram table for negative sampling. Word2vec
/// uses 1e8; our vocabularies are tiny (hundreds of words), so a much
/// smaller table gives the same distribution.
const UNIGRAM_TABLE_SIZE: usize = 1 << 16;

/// A fixed vocabulary with word counts, subsampling probabilities, and a
/// `count^0.75` unigram table for negative sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    words: Vec<String>,
    counts: Vec<u64>,
    #[serde(skip)]
    index: HashMap<String, usize>,
    /// Probability of *keeping* each word under frequency subsampling.
    keep_prob: Vec<f64>,
    /// Negative-sampling table: word indices proportional to count^0.75.
    #[serde(skip)]
    unigram_table: Vec<u32>,
    total_tokens: u64,
}

impl Vocab {
    /// Builds the vocabulary from tokenized sentences, keeping words with
    /// at least `min_count` occurrences. `subsample_t` is word2vec's `t`
    /// parameter (typically `1e-3`–`1e-5`); pass `f64::INFINITY` to
    /// disable subsampling.
    #[must_use]
    pub fn build(sentences: &[Vec<String>], min_count: u64, subsample_t: f64) -> Self {
        let mut raw_counts: HashMap<&str, u64> = HashMap::new();
        for sent in sentences {
            for tok in sent {
                *raw_counts.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut pairs: Vec<(&str, u64)> = raw_counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        // Deterministic order: by descending count, then lexicographic.
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

        let words: Vec<String> = pairs.iter().map(|(w, _)| (*w).to_string()).collect();
        let counts: Vec<u64> = pairs.iter().map(|(_, c)| *c).collect();
        let total_tokens: u64 = counts.iter().sum();
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();

        // Subsampling keep probability (word2vec formula):
        // p_keep = sqrt(t/f) + t/f, clamped to 1.
        let keep_prob = counts
            .iter()
            .map(|&c| {
                if !subsample_t.is_finite() || total_tokens == 0 {
                    return 1.0;
                }
                let f = c as f64 / total_tokens as f64;
                ((subsample_t / f).sqrt() + subsample_t / f).min(1.0)
            })
            .collect();

        let unigram_table = build_unigram_table(&counts);

        Self {
            words,
            counts,
            index,
            keep_prob,
            unigram_table,
            total_tokens,
        }
    }

    /// Number of vocabulary words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total token count over kept words.
    #[must_use]
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Word by index.
    #[must_use]
    pub fn word(&self, i: usize) -> &str {
        &self.words[i]
    }

    /// Count of word `i`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Index of a word.
    #[must_use]
    pub fn lookup(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Keep-probability of word `i` under subsampling.
    #[must_use]
    pub fn keep_prob(&self, i: usize) -> f64 {
        self.keep_prob[i]
    }

    /// Draws a negative sample index from the `count^0.75` distribution
    /// given a uniform `u ∈ [0, 1)`.
    #[must_use]
    pub fn negative_sample(&self, u: f64) -> usize {
        debug_assert!(!self.unigram_table.is_empty());
        let idx =
            ((u * self.unigram_table.len() as f64) as usize).min(self.unigram_table.len() - 1);
        self.unigram_table[idx] as usize
    }

    /// Rebuilds the derived tables after deserialization.
    pub fn rebuild(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        self.unigram_table = build_unigram_table(&self.counts);
    }
}

fn build_unigram_table(counts: &[u64]) -> Vec<u32> {
    if counts.is_empty() {
        return Vec::new();
    }
    let powered: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
    let total: f64 = powered.iter().sum();
    let mut table = Vec::with_capacity(UNIGRAM_TABLE_SIZE);
    let mut cum = 0.0;
    let mut word = 0usize;
    for i in 0..UNIGRAM_TABLE_SIZE {
        let target = (i as f64 + 0.5) / UNIGRAM_TABLE_SIZE as f64 * total;
        while cum + powered[word] < target && word + 1 < counts.len() {
            cum += powered[word];
            word += 1;
        }
        table.push(word as u32);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentences() -> Vec<Vec<String>> {
        let corpus = [
            "gelatin purupuru dessert milk",
            "gelatin purupuru milk sugar",
            "almond karikari topping dessert",
            "gelatin milk dessert",
            "rare word here",
        ];
        corpus
            .iter()
            .map(|s| s.split_whitespace().map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn min_count_prunes() {
        let v = Vocab::build(&sentences(), 2, f64::INFINITY);
        assert!(v.lookup("gelatin").is_some());
        assert!(v.lookup("milk").is_some());
        assert!(v.lookup("rare").is_none(), "count-1 words pruned");
        let v1 = Vocab::build(&sentences(), 1, f64::INFINITY);
        assert!(v1.lookup("rare").is_some());
        assert!(v1.len() > v.len());
    }

    #[test]
    fn order_is_count_then_lexicographic() {
        let v = Vocab::build(&sentences(), 1, f64::INFINITY);
        for i in 1..v.len() {
            let (c_prev, c) = (v.count(i - 1), v.count(i));
            assert!(
                c_prev > c || (c_prev == c && v.word(i - 1) < v.word(i)),
                "order violated at {i}"
            );
        }
    }

    #[test]
    fn counts_match_corpus() {
        let v = Vocab::build(&sentences(), 1, f64::INFINITY);
        let g = v.lookup("gelatin").unwrap();
        assert_eq!(v.count(g), 3);
        let d = v.lookup("dessert").unwrap();
        assert_eq!(v.count(d), 3);
    }

    #[test]
    fn subsampling_disabled_keeps_everything() {
        let v = Vocab::build(&sentences(), 1, f64::INFINITY);
        for i in 0..v.len() {
            assert_eq!(v.keep_prob(i), 1.0);
        }
    }

    #[test]
    fn subsampling_penalizes_frequent_words() {
        // With aggressive t, the most frequent word gets the lowest keep
        // probability.
        let v = Vocab::build(&sentences(), 1, 1e-2);
        let most = 0; // sorted by count
        let least = v.len() - 1;
        assert!(v.keep_prob(most) <= v.keep_prob(least));
        assert!(v.keep_prob(most) > 0.0);
    }

    #[test]
    fn negative_sampling_follows_powered_counts() {
        let v = Vocab::build(&sentences(), 1, f64::INFINITY);
        let n = 200_000;
        let mut counts = vec![0u64; v.len()];
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            counts[v.negative_sample(u)] += 1;
        }
        // Empirical ratio between the most frequent (count 3) and a
        // count-1 word should be near (3/1)^0.75 ≈ 2.28.
        let g = v.lookup("gelatin").unwrap();
        let rare = v.lookup("rare").unwrap();
        let ratio = counts[g] as f64 / counts[rare] as f64;
        assert!((ratio - 3.0f64.powf(0.75)).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn empty_corpus() {
        let v = Vocab::build(&[], 1, f64::INFINITY);
        assert!(v.is_empty());
        assert_eq!(v.total_tokens(), 0);
    }

    #[test]
    fn rebuild_restores_lookup() {
        let mut v = Vocab::build(&sentences(), 1, f64::INFINITY);
        let before = v.lookup("gelatin");
        v.index.clear();
        v.rebuild();
        assert_eq!(v.lookup("gelatin"), before);
        assert!(!v.unigram_table.is_empty());
    }
}

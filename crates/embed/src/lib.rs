//! Word embeddings for the gel-relatedness filter.
//!
//! The paper trains word2vec on all recipe descriptions and drops texture
//! terms whose nearest neighbours include ingredients *unrelated to gel*
//! (the "crispy near nuts" case). This crate implements that from scratch:
//!
//! * [`vocab`] — vocabulary construction with minimum-count pruning,
//!   frequency-based subsampling, and the `f^0.75` unigram table for
//!   negative sampling;
//! * [`model`] — skip-gram with negative sampling (SGNS), plain SGD with
//!   linear learning-rate decay, deterministic given a seeded RNG;
//! * [`filter`] — the relatedness decision: a texture term is kept only if
//!   its top-k neighbourhood is not dominated by unrelated-ingredient
//!   tokens.
//!
//! Embeddings are `f32` (standard for word2vec; the downstream model never
//! consumes them numerically — only the filter decision crosses the crate
//! boundary).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod filter;
pub mod model;
pub mod vocab;

pub use filter::{FilterConfig, FilterOutcome, GelRelatednessFilter};
pub use model::{SgnsConfig, Word2Vec};
pub use vocab::Vocab;

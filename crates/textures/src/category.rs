//! Rheological category annotations and the consolidated analysis axes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Quantitative-texture category a term is annotated with in the
/// dictionary.
///
/// The first three (`Hardness`, `Cohesiveness`, `Adhesiveness`) are the
/// instrumental attributes the paper compares against (Table I). The
/// remainder are perceptual families present in the Japanese texture-term
/// literature that the analyses need: `Softness` and `Elasticity` are the
/// opposing poles used by Fig. 3's histograms, and the crisp/smooth/airy
/// families mark gel-*unrelated* textures the word2vec step filters out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Firm, resistant to deformation (rheometer attribute F1).
    Hardness,
    /// Yielding, weak gels; the perceptual negative of hardness.
    Softness,
    /// Holds together over repeated bites (rheometer attribute c/a).
    Cohesiveness,
    /// Springy, recovers shape — drives *high* instrumental cohesiveness.
    Elasticity,
    /// Sticky, clings to palate (rheometer attribute: negative force area).
    Adhesiveness,
    /// Thick, resistant to flow.
    Viscosity,
    /// Brittle fracture, crunchy/crispy families (gel-unrelated).
    Crispness,
    /// Slippery, even surface feel.
    Smoothness,
    /// Light, porous, whipped textures.
    Airiness,
    /// Dense, weighty impressions.
    Heaviness,
    /// Dry, powdery, crumbly impressions.
    Dryness,
}

impl Category {
    /// All category values, in declaration order.
    pub const ALL: [Category; 11] = [
        Category::Hardness,
        Category::Softness,
        Category::Cohesiveness,
        Category::Elasticity,
        Category::Adhesiveness,
        Category::Viscosity,
        Category::Crispness,
        Category::Smoothness,
        Category::Airiness,
        Category::Heaviness,
        Category::Dryness,
    ];

    /// The three instrumental categories used to build the dictionary
    /// subset in the paper (Section III-A).
    pub const INSTRUMENTAL: [Category; 3] = [
        Category::Hardness,
        Category::Cohesiveness,
        Category::Adhesiveness,
    ];

    /// Short machine-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Category::Hardness => "hardness",
            Category::Softness => "softness",
            Category::Cohesiveness => "cohesiveness",
            Category::Elasticity => "elasticity",
            Category::Adhesiveness => "adhesiveness",
            Category::Viscosity => "viscosity",
            Category::Crispness => "crispness",
            Category::Smoothness => "smoothness",
            Category::Airiness => "airiness",
            Category::Heaviness => "heaviness",
            Category::Dryness => "dryness",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The two consolidated axes of the Fig. 4 scatter plot.
///
/// Per the paper: "softness is negative hardness"; and following the
/// physics stated with Fig. 3 ("strong elasticity leads to large value of
/// cohesiveness"), elastic terms score positive and crumbly terms negative
/// on the cohesiveness axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Hard (+) ↔ soft (−).
    Hardness,
    /// Cohesive/elastic (+) ↔ crumbly/short (−).
    Cohesiveness,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Hardness => f.write_str("hardness"),
            Axis::Cohesiveness => f.write_str("cohesiveness"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_variant_once() {
        let mut names: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Category::ALL.len());
    }

    #[test]
    fn instrumental_is_subset_of_all() {
        for c in Category::INSTRUMENTAL {
            assert!(Category::ALL.contains(&c));
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Category::Hardness.to_string(), "hardness");
        assert_eq!(Axis::Cohesiveness.to_string(), "cohesiveness");
    }

    #[test]
    fn categories_are_ordered_for_btreeset_use() {
        assert!(Category::Hardness < Category::Softness);
    }
}

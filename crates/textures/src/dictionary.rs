//! The texture-term dictionary: term table plus surface-form index.

use crate::builtin;
use crate::category::Category;
use crate::term::{TermEntry, TermId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An immutable dictionary of texture terms with O(1) surface lookup.
///
/// # Examples
/// ```
/// use rheotex_textures::{extract_terms, TextureDictionary};
///
/// let dict = TextureDictionary::comprehensive();
/// assert_eq!(dict.len(), 288);
/// let terms = extract_terms(&dict, "totemo purupuru de oishii");
/// assert_eq!(terms.len(), 1);
/// assert_eq!(dict.entry(terms[0]).surface, "purupuru");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextureDictionary {
    entries: Vec<TermEntry>,
    #[serde(skip)]
    index: HashMap<String, TermId>,
}

impl TextureDictionary {
    /// Builds a dictionary from entries. Later duplicates of a surface form
    /// are dropped (first entry wins), mirroring how a curated dictionary
    /// would be de-duplicated.
    #[must_use]
    pub fn from_entries(entries: Vec<TermEntry>) -> Self {
        let mut kept = Vec::with_capacity(entries.len());
        let mut index = HashMap::with_capacity(entries.len());
        for e in entries {
            let id = TermId(kept.len() as u32);
            if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(e.surface.clone())
            {
                slot.insert(id);
                kept.push(e);
            }
        }
        Self {
            entries: kept,
            index,
        }
    }

    /// The full 288-entry reconstruction of the paper's dictionary
    /// (see [`crate::builtin`]).
    #[must_use]
    pub fn comprehensive() -> Self {
        Self::from_entries(builtin::comprehensive_entries())
    }

    /// Just the 41 gel-active terms (the vocabulary that survives the
    /// paper's corpus filtering).
    #[must_use]
    pub fn gel_active() -> Self {
        Self::from_entries(builtin::gel_entries())
    }

    /// Number of terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this dictionary.
    #[must_use]
    pub fn entry(&self, id: TermId) -> &TermEntry {
        &self.entries[id.index()]
    }

    /// Entry by id, or `None` if out of range.
    #[must_use]
    pub fn get(&self, id: TermId) -> Option<&TermEntry> {
        self.entries.get(id.index())
    }

    /// Looks up a surface form (exact, case-sensitive — callers lowercase
    /// during tokenization).
    #[must_use]
    pub fn lookup(&self, surface: &str) -> Option<TermId> {
        self.index.get(surface).copied()
    }

    /// Iterates `(TermId, &TermEntry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &TermEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (TermId(i as u32), e))
    }

    /// Ids of all entries annotated with `category`.
    #[must_use]
    pub fn ids_with_category(&self, category: Category) -> Vec<TermId> {
        self.iter()
            .filter(|(_, e)| e.has_category(category))
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all gel-related entries.
    #[must_use]
    pub fn gel_related_ids(&self) -> Vec<TermId> {
        self.iter()
            .filter(|(_, e)| e.gel_related)
            .map(|(id, _)| id)
            .collect()
    }

    /// Restricts the dictionary to the given ids, producing a compact
    /// re-indexed dictionary (used after the word2vec filter drops
    /// gel-unrelated terms). Unknown ids are ignored.
    #[must_use]
    pub fn restrict(&self, ids: &[TermId]) -> Self {
        let entries = ids.iter().filter_map(|id| self.get(*id)).cloned().collect();
        Self::from_entries(entries)
    }

    /// Rebuilds the surface index (needed after deserialization, since the
    /// index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.surface.clone(), TermId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{COMPREHENSIVE_SIZE, GEL_ACTIVE_COUNT};

    #[test]
    fn comprehensive_size() {
        let d = TextureDictionary::comprehensive();
        assert_eq!(d.len(), COMPREHENSIVE_SIZE);
        assert!(!d.is_empty());
    }

    #[test]
    fn gel_active_size_and_flags() {
        let d = TextureDictionary::gel_active();
        assert_eq!(d.len(), GEL_ACTIVE_COUNT);
        assert_eq!(d.gel_related_ids().len(), GEL_ACTIVE_COUNT);
    }

    #[test]
    fn lookup_roundtrip() {
        let d = TextureDictionary::comprehensive();
        let id = d.lookup("purupuru").expect("purupuru in dictionary");
        assert_eq!(d.entry(id).surface, "purupuru");
        assert!(d.lookup("not-a-term").is_none());
    }

    #[test]
    fn duplicates_first_wins() {
        let mut entries = crate::builtin::gel_entries();
        let mut dup = entries[0].clone();
        dup.gloss = "duplicate".into();
        entries.push(dup);
        let d = TextureDictionary::from_entries(entries);
        assert_eq!(d.len(), GEL_ACTIVE_COUNT);
        let id = d.lookup("furufuru").unwrap();
        assert_ne!(d.entry(id).gloss, "duplicate");
    }

    #[test]
    fn category_query() {
        let d = TextureDictionary::gel_active();
        let hard = d.ids_with_category(Category::Hardness);
        assert!(hard.iter().any(|&id| d.entry(id).surface == "katai"));
        assert!(!hard.iter().any(|&id| d.entry(id).surface == "fuwafuwa"));
    }

    #[test]
    fn restrict_reindexes() {
        let d = TextureDictionary::gel_active();
        let keep: Vec<_> = d
            .iter()
            .filter(|(_, e)| e.surface == "katai" || e.surface == "purupuru")
            .map(|(id, _)| id)
            .collect();
        let r = d.restrict(&keep);
        assert_eq!(r.len(), 2);
        assert!(r.lookup("katai").is_some());
        assert!(r.lookup("furufuru").is_none());
        // Ids are compact again.
        assert_eq!(r.lookup("katai").unwrap().index() < 2, true);
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let d = TextureDictionary::gel_active();
        let json = serde_json::to_string(&d).unwrap();
        let mut back: TextureDictionary = serde_json::from_str(&json).unwrap();
        assert!(back.lookup("katai").is_none(), "index is skipped by serde");
        back.rebuild_index();
        assert_eq!(back.lookup("katai"), d.lookup("katai"));
    }
}

//! Japanese sensory texture terms with rheological category annotations.
//!
//! The paper builds its vocabulary from the *Comprehensive Japanese Texture
//! Terms* dictionary (NARO), extracting the 288 terms annotated with the
//! rheological categories **hardness**, **cohesiveness**, and
//! **adhesiveness**; 41 of those terms actually occur in the filtered
//! Cookpad corpus. That dictionary is a closed web resource, so this crate
//! reconstructs it:
//!
//! * the 41 operative terms are taken **verbatim from the paper's
//!   Table II(a)** (romanized mimetics like *furufuru*, *katai*,
//!   *purupuru*), with the paper's own English glosses;
//! * the remaining entries are real Japanese texture mimetics from the
//!   broader texture-term literature (crispy/crunchy families etc. — these
//!   double as the gel-*unrelated* confounders the word2vec filter must
//!   reject) plus systematic sokuon/reduplication variants, bringing the
//!   total to the paper's 288.
//!
//! Each [`term::TermEntry`] carries:
//! * a set of [`category::Category`] annotations (the dictionary metadata
//!   used to validate topic ↔ rheology linkages and to build the Fig. 3
//!   histograms), and
//! * signed axis scores on the **hardness** and **cohesiveness** axes used
//!   by the Fig. 4 scatter (`softness` is negative hardness; following the
//!   physics stated alongside Fig. 3 — elastic gels recover for the second
//!   bite, so elastic terms score *positive* cohesiveness; the crumbly
//!   family scores negative).
//!
//! [`dictionary::TextureDictionary`] provides lookup and text extraction;
//! [`profile::TextureProfile`] aggregates extracted terms into category
//! histograms and axis scores.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod builtin;
pub mod category;
pub mod dictionary;
pub mod extract;
pub mod profile;
pub mod term;

pub use category::{Axis, Category};
pub use dictionary::TextureDictionary;
pub use extract::{extract_terms, tokenize};
pub use profile::TextureProfile;
pub use term::{TermEntry, TermId};

//! Built-in reconstruction of the 288-entry texture-term dictionary.
//!
//! Three layers:
//!
//! 1. [`GEL_TERMS`] — the 41 gel-active terms that occur in the paper's
//!    filtered corpus. The first 31 are verbatim from Table II(a) with the
//!    paper's glosses; the remaining 10 are standard Japanese gel-texture
//!    mimetics from the texture-term literature (Hayakawa et al. 2013)
//!    included so the synthetic corpus has the same vocabulary size the
//!    paper reports.
//! 2. [`CONFOUNDER_TERMS`] — real gel-*unrelated* mimetics (crispy,
//!    crunchy, floury families). These play the role the paper gives to
//!    terms like "crispy" near nut toppings: present in descriptions but to
//!    be excluded by the word2vec relatedness filter.
//! 3. Generated sokuon / reduplication / `-ri` / `-n` variants of mimetic
//!    stems, filling the dictionary to exactly
//!    [`COMPREHENSIVE_SIZE`] = 288 entries — the size of the NARO
//!    *Comprehensive Japanese Texture Terms* subset the paper uses. These
//!    stand in for the 247 dictionary terms that never occur in the
//!    corpus.

use crate::category::Category;
use crate::term::TermEntry;
use std::collections::HashSet;

/// Total size of the reconstructed dictionary (matches the paper).
pub const COMPREHENSIVE_SIZE: usize = 288;

/// Number of gel-active terms (matches the paper's "41 texture terms out
/// of 288").
pub const GEL_ACTIVE_COUNT: usize = 41;

type Row = (
    &'static str,
    &'static str,
    &'static [Category],
    f64,
    f64,
    f64,
);

use Category::*;

/// Gel-active terms: `(surface, gloss, categories, hardness, cohesiveness,
/// adhesiveness)`. Axis scores are signed per the crate-level conventions.
pub const GEL_TERMS: &[Row] = &[
    // --- verbatim from Table II(a), in order of appearance ---
    (
        "furufuru",
        "soft and slightly wobbly, easy to break",
        &[Softness, Elasticity],
        -0.8,
        0.3,
        0.1,
    ),
    (
        "katai",
        "hard, firm, stiff, tough, rigid",
        &[Hardness],
        1.0,
        0.2,
        0.0,
    ),
    (
        "muchimuchi",
        "resilient, firm and slightly sticky",
        &[Hardness, Elasticity, Adhesiveness],
        0.7,
        0.8,
        0.4,
    ),
    (
        "gucha",
        "mushy; having lost its original shape",
        &[Softness, Viscosity],
        -0.7,
        -0.6,
        0.3,
    ),
    (
        "potteri",
        "thick, resistant to flow",
        &[Viscosity],
        0.1,
        0.2,
        0.3,
    ),
    (
        "burunburun",
        "elastic and slightly wobbly",
        &[Elasticity],
        0.2,
        0.9,
        0.0,
    ),
    (
        "bosoboso",
        "dry, crumbly and not compact",
        &[Dryness, Cohesiveness],
        0.3,
        -0.9,
        0.0,
    ),
    (
        "botet",
        "thick and heavy, resistant to flow",
        &[Viscosity, Heaviness],
        0.2,
        0.1,
        0.3,
    ),
    (
        "shakusyaku",
        "crisp; material is cut off or shear off easily",
        &[Crispness, Hardness],
        0.5,
        -0.7,
        0.0,
    ),
    (
        "buruburu",
        "elastic and slightly wobbly",
        &[Elasticity],
        0.1,
        0.8,
        0.0,
    ),
    (
        "purupuru",
        "soft elastic and slightly sticky, slightly wobbly",
        &[Softness, Elasticity, Adhesiveness],
        -0.5,
        0.7,
        0.3,
    ),
    (
        "nettori",
        "sticky, viscous and thick",
        &[Adhesiveness, Viscosity],
        0.1,
        0.3,
        0.9,
    ),
    (
        "purit",
        "crispy, sound emitted by biting slightly hard foods",
        &[Hardness, Elasticity],
        0.5,
        0.6,
        0.0,
    ),
    (
        "mottari",
        "thick and viscous, resistant to flow",
        &[Viscosity],
        0.0,
        0.2,
        0.3,
    ),
    (
        "horohoro",
        "crumbly and soft",
        &[Softness, Dryness, Cohesiveness],
        -0.6,
        -0.8,
        0.0,
    ),
    (
        "necchiri",
        "very sticky and viscous",
        &[Adhesiveness, Viscosity],
        0.2,
        0.4,
        1.0,
    ),
    (
        "fuwafuwa",
        "soft and fluffy",
        &[Softness, Airiness],
        -0.9,
        -0.2,
        0.0,
    ),
    (
        "yuruyuru",
        "thin, loose, easy to deform",
        &[Softness],
        -0.9,
        -0.3,
        0.1,
    ),
    (
        "bechat",
        "sticky, viscous and watery",
        &[Adhesiveness, Softness],
        -0.6,
        -0.2,
        0.8,
    ),
    (
        "fukahuka",
        "soft, swollen and somewhat elastic",
        &[Softness, Airiness, Elasticity],
        -0.7,
        0.3,
        0.0,
    ),
    (
        "burit",
        "firm and resilient",
        &[Hardness, Elasticity],
        0.6,
        0.7,
        0.0,
    ),
    (
        "dossiri",
        "heavy, dense",
        &[Heaviness, Hardness],
        0.8,
        0.1,
        0.0,
    ),
    (
        "churuchuru",
        "slippery, smooth and wet surface",
        &[Smoothness],
        -0.2,
        0.1,
        0.1,
    ),
    (
        "punipuni",
        "soft elastic and slightly sticky",
        &[Softness, Elasticity, Adhesiveness],
        -0.4,
        0.6,
        0.3,
    ),
    ("kutat", "soft, not taut", &[Softness], -0.7, -0.2, 0.0),
    (
        "burinburin",
        "firm and resilient",
        &[Hardness, Elasticity],
        0.7,
        0.8,
        0.0,
    ),
    ("korit", "crunchy", &[Hardness, Crispness], 0.8, -0.3, 0.0),
    (
        "daradara",
        "thick, heavy, slowly flowing",
        &[Viscosity],
        -0.3,
        -0.1,
        0.2,
    ),
    (
        "karat",
        "dry and crispy",
        &[Dryness, Crispness],
        0.4,
        -0.6,
        0.0,
    ),
    (
        "hajikeru",
        "cracking open, fizzy",
        &[Crispness, Elasticity],
        0.3,
        0.2,
        0.0,
    ),
    ("omoi", "heavy", &[Heaviness], 0.5, 0.0, 0.0),
    // --- additional gel-texture mimetics from the texture-term literature ---
    (
        "torotoro",
        "thick, melty, soft-flowing",
        &[Softness, Viscosity],
        -0.6,
        0.1,
        0.4,
    ),
    (
        "tsurutsuru",
        "slippery and smooth",
        &[Smoothness],
        -0.3,
        0.2,
        0.1,
    ),
    (
        "mochimochi",
        "springy and chewy",
        &[Elasticity, Cohesiveness],
        0.4,
        0.9,
        0.3,
    ),
    (
        "shikoshiko",
        "firm and pleasantly chewy",
        &[Hardness, Elasticity],
        0.6,
        0.6,
        0.0,
    ),
    (
        "nebaneba",
        "sticky and stringy",
        &[Adhesiveness, Viscosity],
        0.0,
        0.5,
        1.0,
    ),
    (
        "sarasara",
        "thin, watery, smooth",
        &[Smoothness, Softness],
        -0.8,
        -0.4,
        0.0,
    ),
    (
        "kochikochi",
        "rock hard, stiffened",
        &[Hardness],
        1.0,
        -0.1,
        0.0,
    ),
    ("funyafunya", "limp, flabby", &[Softness], -0.8, -0.3, 0.0),
    (
        "tapuntapun",
        "jiggly, brimming",
        &[Softness, Elasticity],
        -0.6,
        0.4,
        0.0,
    ),
    (
        "torori",
        "smoothly melting, thickly dripping",
        &[Softness, Viscosity, Smoothness],
        -0.5,
        0.0,
        0.2,
    ),
];

/// Gel-unrelated confounder terms that the word2vec filter must reject
/// when they co-occur with non-gel ingredients (nuts, cookies, toppings).
pub const CONFOUNDER_TERMS: &[Row] = &[
    (
        "sakusaku",
        "light and crispy (baked goods)",
        &[Crispness],
        0.4,
        -0.7,
        0.0,
    ),
    (
        "karikari",
        "hard and crunchy (fried/toasted)",
        &[Crispness, Hardness],
        0.7,
        -0.8,
        0.0,
    ),
    (
        "paripari",
        "thin and crisp (wafers, nori)",
        &[Crispness],
        0.5,
        -0.8,
        0.0,
    ),
    (
        "baribari",
        "loudly crunchy, rigid",
        &[Crispness, Hardness],
        0.8,
        -0.7,
        0.0,
    ),
    (
        "korikori",
        "crunchy with bite (cartilage, nuts)",
        &[Crispness, Hardness],
        0.7,
        -0.4,
        0.0,
    ),
    ("poripori", "quietly crunchy", &[Crispness], 0.5, -0.5, 0.0),
    (
        "zakuzaku",
        "coarsely crunchy (granola, crumble)",
        &[Crispness],
        0.6,
        -0.7,
        0.0,
    ),
    (
        "garigari",
        "very hard, scraping crunch (ice)",
        &[Crispness, Hardness],
        0.9,
        -0.6,
        0.0,
    ),
    (
        "shakishaki",
        "crisp and juicy (fresh vegetables)",
        &[Crispness],
        0.4,
        -0.5,
        0.0,
    ),
    (
        "pasapasa",
        "dry and powdery, moistureless",
        &[Dryness],
        0.2,
        -0.8,
        0.0,
    ),
    (
        "hokuhoku",
        "floury and warm (potato, pumpkin)",
        &[Dryness, Airiness],
        0.0,
        -0.5,
        0.0,
    ),
    (
        "zarazara",
        "grainy, rough surface",
        &[Dryness],
        0.2,
        -0.4,
        0.0,
    ),
    ("gorigori", "hard and fibrous", &[Hardness], 0.8, -0.3, 0.0),
    (
        "kishikishi",
        "squeaky between the teeth",
        &[Hardness],
        0.4,
        -0.2,
        0.0,
    ),
    (
        "mosomoso",
        "dry and mealy, hard to swallow",
        &[Dryness],
        0.1,
        -0.6,
        0.0,
    ),
    (
        "kurisupi",
        "crispy (loanword)",
        &[Crispness],
        0.5,
        -0.7,
        0.0,
    ),
    (
        "karifuwa",
        "crisp outside, fluffy inside",
        &[Crispness, Airiness],
        0.2,
        -0.4,
        0.0,
    ),
    (
        "jukushi",
        "over-ripe, squashy (fruit)",
        &[Softness],
        -0.7,
        -0.5,
        0.2,
    ),
    (
        "shittori",
        "moist and settled (cakes)",
        &[Smoothness, Softness],
        -0.4,
        0.1,
        0.2,
    ),
    (
        "puchipuchi",
        "popping beads (roe, tapioca)",
        &[Crispness, Elasticity],
        0.2,
        0.3,
        0.0,
    ),
];

/// Mimetic stems used to generate filler dictionary entries (the 247 NARO
/// terms that never occur in the corpus). Combined with four
/// morphological templates each; generation skips collisions with the
/// hand-annotated tables above.
const VARIANT_STEMS: &[&str] = &[
    "pachi", "pichi", "pochi", "peta", "pita", "beta", "bita", "guni", "gunya", "gunyo", "funi",
    "funya", "muni", "munyu", "nuru", "nume", "nuta", "doro", "dero", "toro", "tsubu", "tsubo",
    "shari", "shori", "shuwa", "jori", "jari", "zuru", "churu", "nyuru", "gishi", "kishi", "kushu",
    "gushu", "fuka", "howa", "hoko", "saku", "shaki", "kari", "pari", "bari", "gari", "kori",
    "pori", "zaku", "boso", "pasa", "mochi", "neba", "buyo", "puyo", "tapu", "chapu", "yawa",
    "kata", "gowa", "zara", "tsuru", "suru", "nicha", "pecha", "bicha", "gucho", "becho", "guzu",
    "fuwa", "puru", "buru", "puri", "buri", "gumi",
];

/// Morphological templates for generated entries, with the category family
/// each template leans toward. `{s}` is the stem.
const VARIANT_FAMILIES: &[(&str, &[Category], f64, f64, f64)] = &[
    // reduplication: continuous texture impression
    ("{s}{s}", &[Viscosity], 0.0, 0.0, 0.2),
    // sokuon (-t): single sharp bite event
    ("{s}t", &[Crispness], 0.3, -0.3, 0.0),
    // -ri: settled state
    ("{s}ri", &[Smoothness], -0.1, 0.1, 0.1),
    // -n: resonant, springy
    ("{s}n", &[Elasticity], 0.0, 0.4, 0.0),
];

fn rows_to_entries(rows: &[Row], gel_related: bool) -> Vec<TermEntry> {
    rows.iter()
        .map(|(surface, gloss, cats, h, c, a)| {
            TermEntry::new(surface, gloss, cats, *h, *c, *a, gel_related)
        })
        .collect()
}

/// The 41 gel-active entries.
#[must_use]
pub fn gel_entries() -> Vec<TermEntry> {
    rows_to_entries(GEL_TERMS, true)
}

/// The hand-annotated gel-unrelated confounder entries.
#[must_use]
pub fn confounder_entries() -> Vec<TermEntry> {
    rows_to_entries(CONFOUNDER_TERMS, false)
}

/// The full 288-entry dictionary: gel terms, confounders, then generated
/// variants until [`COMPREHENSIVE_SIZE`] is reached. Deterministic — the
/// same list on every call.
#[must_use]
pub fn comprehensive_entries() -> Vec<TermEntry> {
    let mut entries = gel_entries();
    entries.extend(confounder_entries());
    let mut seen: HashSet<String> = entries.iter().map(|e| e.surface.clone()).collect();

    'outer: for (fi, (template, cats, h, c, a)) in VARIANT_FAMILIES.iter().enumerate() {
        for stem in VARIANT_STEMS {
            if entries.len() >= COMPREHENSIVE_SIZE {
                break 'outer;
            }
            let surface = template.replace("{s}", stem);
            if !seen.insert(surface.clone()) {
                continue;
            }
            let gloss = format!("texture mimetic ({} family variant)", cats[0]);
            // Small deterministic jitter so generated entries are not all
            // identical: offset by stem length parity and family index.
            let jitter = ((stem.len() % 3) as f64 - 1.0) * 0.05 + fi as f64 * 0.01;
            entries.push(TermEntry::new(
                &surface,
                &gloss,
                cats,
                (h + jitter).clamp(-1.0, 1.0),
                (c + jitter).clamp(-1.0, 1.0),
                (a + jitter.abs()).clamp(0.0, 1.0),
                false,
            ));
        }
    }
    assert_eq!(
        entries.len(),
        COMPREHENSIVE_SIZE,
        "stem/template inventory must cover the full dictionary"
    );
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gel_term_count_matches_paper() {
        assert_eq!(GEL_TERMS.len(), GEL_ACTIVE_COUNT);
        assert_eq!(gel_entries().len(), GEL_ACTIVE_COUNT);
    }

    #[test]
    fn comprehensive_has_exactly_288_unique_surfaces() {
        let entries = comprehensive_entries();
        assert_eq!(entries.len(), COMPREHENSIVE_SIZE);
        let surfaces: HashSet<&str> = entries.iter().map(|e| e.surface.as_str()).collect();
        assert_eq!(surfaces.len(), COMPREHENSIVE_SIZE, "duplicate surfaces");
    }

    #[test]
    fn gel_entries_are_flagged_and_confounders_not() {
        assert!(gel_entries().iter().all(|e| e.gel_related));
        assert!(confounder_entries().iter().all(|e| !e.gel_related));
    }

    #[test]
    fn paper_terms_present_with_expected_polarity() {
        let entries = gel_entries();
        let find = |s: &str| entries.iter().find(|e| e.surface == s).unwrap();
        assert!(find("katai").hardness > 0.9);
        assert!(find("furufuru").hardness < 0.0);
        assert!(find("purupuru").cohesiveness > 0.5);
        assert!(find("bosoboso").cohesiveness < -0.5);
        assert!(find("nettori").adhesiveness > 0.8);
        assert!(find("dossiri").has_category(Category::Heaviness));
    }

    #[test]
    fn axis_scores_within_bounds() {
        for e in comprehensive_entries() {
            assert!((-1.0..=1.0).contains(&e.hardness), "{}", e.surface);
            assert!((-1.0..=1.0).contains(&e.cohesiveness), "{}", e.surface);
            assert!((0.0..=1.0).contains(&e.adhesiveness), "{}", e.surface);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = comprehensive_entries();
        let b = comprehensive_entries();
        assert_eq!(a, b);
    }

    #[test]
    fn surfaces_are_lowercase_tokens() {
        for e in comprehensive_entries() {
            assert!(
                e.surface
                    .chars()
                    .all(|ch| ch.is_ascii_lowercase() || !ch.is_ascii()),
                "surface {:?} must be a lowercase token",
                e.surface
            );
            assert!(!e.surface.contains(' '));
        }
    }
}

//! A single dictionary entry: one texture term with its annotations.

use crate::category::{Axis, Category};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Stable identifier of a term inside a [`crate::TextureDictionary`]
/// (its index in the dictionary's term table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The index as `usize` for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One texture term with its dictionary annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermEntry {
    /// Romanized surface form as it appears in recipe text (e.g.
    /// `"purupuru"`). Lowercase ASCII; matching is exact on tokens.
    pub surface: String,
    /// English gloss (the paper's own gloss where available).
    pub gloss: String,
    /// Dictionary category annotations.
    pub categories: BTreeSet<Category>,
    /// Signed score on the hardness axis in `[-1, 1]`
    /// (hard positive, soft negative).
    pub hardness: f64,
    /// Signed score on the cohesiveness axis in `[-1, 1]`
    /// (elastic/cohesive positive, crumbly negative).
    pub cohesiveness: f64,
    /// Signed adhesiveness score in `[0, 1]` (sticky positive).
    pub adhesiveness: f64,
    /// Whether the term describes a texture gels can realize. Terms with
    /// `false` (the crispy/crunchy families) are what the word2vec filter
    /// is expected to exclude from gel recipes.
    pub gel_related: bool,
}

impl TermEntry {
    /// Builder-style constructor from the annotation tuple used by the
    /// built-in tables.
    #[must_use]
    pub fn new(
        surface: &str,
        gloss: &str,
        categories: &[Category],
        hardness: f64,
        cohesiveness: f64,
        adhesiveness: f64,
        gel_related: bool,
    ) -> Self {
        debug_assert!((-1.0..=1.0).contains(&hardness), "hardness {hardness}");
        debug_assert!(
            (-1.0..=1.0).contains(&cohesiveness),
            "cohesiveness {cohesiveness}"
        );
        debug_assert!(
            (0.0..=1.0).contains(&adhesiveness),
            "adhesiveness {adhesiveness}"
        );
        Self {
            surface: surface.to_string(),
            gloss: gloss.to_string(),
            categories: categories.iter().copied().collect(),
            hardness,
            cohesiveness,
            adhesiveness,
            gel_related,
        }
    }

    /// Signed score of this term on a consolidated analysis axis.
    #[must_use]
    pub fn axis_score(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Hardness => self.hardness,
            Axis::Cohesiveness => self.cohesiveness,
        }
    }

    /// Whether the entry is annotated with the given category.
    #[must_use]
    pub fn has_category(&self, category: Category) -> bool {
        self.categories.contains(&category)
    }

    /// Whether the entry carries at least one of the three instrumental
    /// categories (the paper's dictionary-construction criterion).
    #[must_use]
    pub fn is_instrumental(&self) -> bool {
        Category::INSTRUMENTAL
            .iter()
            .any(|c| self.categories.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TermEntry {
        TermEntry::new(
            "katai",
            "hard, firm, stiff",
            &[Category::Hardness],
            1.0,
            0.2,
            0.0,
            true,
        )
    }

    #[test]
    fn axis_scores() {
        let t = sample();
        assert_eq!(t.axis_score(Axis::Hardness), 1.0);
        assert_eq!(t.axis_score(Axis::Cohesiveness), 0.2);
    }

    #[test]
    fn category_membership() {
        let t = sample();
        assert!(t.has_category(Category::Hardness));
        assert!(!t.has_category(Category::Softness));
        assert!(t.is_instrumental());
    }

    #[test]
    fn non_instrumental_term() {
        let t = TermEntry::new(
            "sakusaku",
            "light crispy",
            &[Category::Crispness],
            0.3,
            -0.5,
            0.0,
            false,
        );
        assert!(!t.is_instrumental());
        assert!(!t.gel_related);
    }

    #[test]
    fn term_id_index() {
        assert_eq!(TermId(7).index(), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: TermEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

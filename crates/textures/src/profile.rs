//! Aggregation of extracted texture terms into category histograms and
//! axis scores — the measurement behind Fig. 3 and Fig. 4.

use crate::category::{Axis, Category};
use crate::dictionary::TextureDictionary;
use crate::term::TermId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Category histogram and consolidated axis scores of a bag of texture
/// terms (e.g. all terms of one recipe, or of one KL-divergence bin).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TextureProfile {
    /// Term occurrences per category. A term annotated with several
    /// categories contributes to each of them (matching how the paper
    /// counts Fig. 3 bins from the dictionary's category annotations).
    pub category_counts: BTreeMap<Category, usize>,
    /// Total number of term occurrences aggregated.
    pub total_terms: usize,
    /// Occurrence-weighted mean hardness score in `[-1, 1]`.
    pub hardness_score: f64,
    /// Occurrence-weighted mean cohesiveness score in `[-1, 1]`.
    pub cohesiveness_score: f64,
    /// Occurrence-weighted mean adhesiveness score in `[0, 1]`.
    pub adhesiveness_score: f64,
}

impl TextureProfile {
    /// Builds a profile from term occurrences (repeats allowed; each
    /// occurrence counts).
    #[must_use]
    pub fn from_term_ids(dict: &TextureDictionary, ids: &[TermId]) -> Self {
        let mut profile = Self::default();
        if ids.is_empty() {
            return profile;
        }
        let mut h = 0.0;
        let mut c = 0.0;
        let mut a = 0.0;
        for &id in ids {
            let Some(entry) = dict.get(id) else { continue };
            profile.total_terms += 1;
            h += entry.hardness;
            c += entry.cohesiveness;
            a += entry.adhesiveness;
            for &cat in &entry.categories {
                *profile.category_counts.entry(cat).or_insert(0) += 1;
            }
        }
        if profile.total_terms > 0 {
            let n = profile.total_terms as f64;
            profile.hardness_score = h / n;
            profile.cohesiveness_score = c / n;
            profile.adhesiveness_score = a / n;
        }
        profile
    }

    /// Count for one category (0 when absent).
    #[must_use]
    pub fn count(&self, category: Category) -> usize {
        self.category_counts.get(&category).copied().unwrap_or(0)
    }

    /// Score on a consolidated axis.
    #[must_use]
    pub fn axis_score(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Hardness => self.hardness_score,
            Axis::Cohesiveness => self.cohesiveness_score,
        }
    }

    /// The category with the highest count, if any terms were aggregated.
    /// Ties break to the smaller category (declaration order).
    #[must_use]
    pub fn dominant_category(&self) -> Option<Category> {
        self.category_counts
            .iter()
            .max_by(|(ca, na), (cb, nb)| na.cmp(nb).then(cb.cmp(ca)))
            .map(|(c, _)| *c)
    }

    /// Merges another profile into this one, recomputing weighted scores.
    pub fn merge(&mut self, other: &Self) {
        if other.total_terms == 0 {
            return;
        }
        let n1 = self.total_terms as f64;
        let n2 = other.total_terms as f64;
        let total = n1 + n2;
        self.hardness_score = (self.hardness_score * n1 + other.hardness_score * n2) / total;
        self.cohesiveness_score =
            (self.cohesiveness_score * n1 + other.cohesiveness_score * n2) / total;
        self.adhesiveness_score =
            (self.adhesiveness_score * n1 + other.adhesiveness_score * n2) / total;
        self.total_terms += other.total_terms;
        for (&cat, &n) in &other.category_counts {
            *self.category_counts.entry(cat).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_terms;

    fn dict() -> TextureDictionary {
        TextureDictionary::gel_active()
    }

    #[test]
    fn empty_profile() {
        let p = TextureProfile::from_term_ids(&dict(), &[]);
        assert_eq!(p.total_terms, 0);
        assert_eq!(p.hardness_score, 0.0);
        assert!(p.dominant_category().is_none());
    }

    #[test]
    fn hard_terms_push_hardness_positive() {
        let d = dict();
        let ids = extract_terms(&d, "katai kochikochi dossiri");
        let p = TextureProfile::from_term_ids(&d, &ids);
        assert_eq!(p.total_terms, 3);
        assert!(p.hardness_score > 0.7, "score {}", p.hardness_score);
        assert!(p.count(Category::Hardness) >= 2);
    }

    #[test]
    fn soft_terms_push_hardness_negative() {
        let d = dict();
        let ids = extract_terms(&d, "furufuru fuwafuwa yuruyuru");
        let p = TextureProfile::from_term_ids(&d, &ids);
        assert!(p.hardness_score < -0.5);
        assert_eq!(p.dominant_category(), Some(Category::Softness));
    }

    #[test]
    fn elastic_terms_push_cohesiveness_positive() {
        let d = dict();
        let ids = extract_terms(&d, "burunburun mochimochi buruburu");
        let p = TextureProfile::from_term_ids(&d, &ids);
        assert!(p.cohesiveness_score > 0.5);
    }

    #[test]
    fn crumbly_terms_push_cohesiveness_negative() {
        let d = dict();
        let ids = extract_terms(&d, "bosoboso horohoro");
        let p = TextureProfile::from_term_ids(&d, &ids);
        assert!(p.cohesiveness_score < -0.5);
    }

    #[test]
    fn repeats_weight_scores() {
        let d = dict();
        let katai = d.lookup("katai").unwrap();
        let furu = d.lookup("furufuru").unwrap();
        let p = TextureProfile::from_term_ids(&d, &[katai, katai, katai, furu]);
        // 3×(+1.0) + 1×(−0.8) over 4 terms
        assert!((p.hardness_score - (3.0 - 0.8) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_joint_construction() {
        let d = dict();
        let ids_a = extract_terms(&d, "katai muchimuchi");
        let ids_b = extract_terms(&d, "furufuru purupuru fuwafuwa");
        let mut merged = TextureProfile::from_term_ids(&d, &ids_a);
        merged.merge(&TextureProfile::from_term_ids(&d, &ids_b));
        let all: Vec<_> = ids_a.iter().chain(ids_b.iter()).copied().collect();
        let joint = TextureProfile::from_term_ids(&d, &all);
        assert_eq!(merged.total_terms, joint.total_terms);
        assert!((merged.hardness_score - joint.hardness_score).abs() < 1e-12);
        assert_eq!(merged.category_counts, joint.category_counts);
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let d = dict();
        let ids = extract_terms(&d, "katai");
        let mut p = TextureProfile::from_term_ids(&d, &ids);
        let before = p.clone();
        p.merge(&TextureProfile::default());
        assert_eq!(p.total_terms, before.total_terms);
        assert_eq!(p.hardness_score, before.hardness_score);
    }
}

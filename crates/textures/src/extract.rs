//! Tokenization and texture-term extraction from recipe descriptions.
//!
//! Descriptions in the synthetic corpus are romanized, so tokenization is
//! simple: split on anything that is not a letter or digit and lowercase.
//! Extraction then looks every token up in the dictionary and returns the
//! matches **in order of occurrence** — the joint topic model consumes the
//! term *sequence* (term frequency falls out of it).

use crate::dictionary::TextureDictionary;
use crate::term::TermId;
use std::collections::HashMap;

/// Splits text into lowercase alphanumeric tokens.
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

/// Extracts dictionary texture terms from `text`, in order of occurrence.
#[must_use]
pub fn extract_terms(dict: &TextureDictionary, text: &str) -> Vec<TermId> {
    tokenize(text)
        .iter()
        .filter_map(|tok| dict.lookup(tok))
        .collect()
}

/// Extracts terms and aggregates them into a frequency map.
#[must_use]
pub fn extract_term_counts(dict: &TextureDictionary, text: &str) -> HashMap<TermId, usize> {
    let mut counts = HashMap::new();
    for id in extract_terms(dict, text) {
        *counts.entry(id).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        let toks = tokenize("Purupuru! no gelatin-mousse,  2co bun.");
        assert_eq!(
            toks,
            vec!["purupuru", "no", "gelatin", "mousse", "2co", "bun"]
        );
    }

    #[test]
    fn tokenize_empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ---").is_empty());
    }

    #[test]
    fn extract_preserves_order_and_repeats() {
        let d = TextureDictionary::gel_active();
        let ids = extract_terms(&d, "totemo purupuru de katai, demo purupuru");
        assert_eq!(ids.len(), 3);
        assert_eq!(d.entry(ids[0]).surface, "purupuru");
        assert_eq!(d.entry(ids[1]).surface, "katai");
        assert_eq!(d.entry(ids[2]).surface, "purupuru");
    }

    #[test]
    fn extract_ignores_unknown_tokens() {
        let d = TextureDictionary::gel_active();
        let ids = extract_terms(&d, "oishii gelatin dessert recipe");
        assert!(ids.is_empty());
    }

    #[test]
    fn counts_aggregate() {
        let d = TextureDictionary::gel_active();
        let counts = extract_term_counts(&d, "purupuru purupuru katai");
        let puru = d.lookup("purupuru").unwrap();
        let katai = d.lookup("katai").unwrap();
        assert_eq!(counts[&puru], 2);
        assert_eq!(counts[&katai], 1);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn case_insensitive_matching() {
        let d = TextureDictionary::gel_active();
        let ids = extract_terms(&d, "PURUPURU Katai");
        assert_eq!(ids.len(), 2);
    }
}

//! Property-based tests for the texture dictionary and extraction.

use proptest::prelude::*;
use rheotex_textures::{extract_terms, tokenize, TermId, TextureDictionary, TextureProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tokenization is total and produces only lowercase alphanumerics.
    #[test]
    fn tokenize_is_total(text in ".{0,200}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    /// Extraction is idempotent under re-joining: extracting from the
    /// surface forms of extracted terms returns the same terms.
    #[test]
    fn extraction_idempotent(text in "[a-z ]{0,120}") {
        let dict = TextureDictionary::comprehensive();
        let once = extract_terms(&dict, &text);
        let rejoined: String = once
            .iter()
            .map(|&t| dict.entry(t).surface.clone())
            .collect::<Vec<_>>()
            .join(" ");
        let twice = extract_terms(&dict, &rejoined);
        prop_assert_eq!(once, twice);
    }

    /// Profiles are bounded whatever multiset of terms they aggregate.
    #[test]
    fn profiles_are_bounded(ids in proptest::collection::vec(0u32..288, 0..60)) {
        let dict = TextureDictionary::comprehensive();
        let ids: Vec<TermId> = ids.into_iter().map(TermId).collect();
        let p = TextureProfile::from_term_ids(&dict, &ids);
        prop_assert!((-1.0..=1.0).contains(&p.hardness_score));
        prop_assert!((-1.0..=1.0).contains(&p.cohesiveness_score));
        prop_assert!((0.0..=1.0).contains(&p.adhesiveness_score));
        prop_assert_eq!(p.total_terms, ids.len());
        // Category counts never exceed total occurrences × categories.
        for (_, &n) in &p.category_counts {
            prop_assert!(n <= ids.len() * 3);
        }
    }

    /// Restriction preserves entry content and membership.
    #[test]
    fn restrict_preserves_entries(keep in proptest::collection::btree_set(0u32..288, 0..50)) {
        let dict = TextureDictionary::comprehensive();
        let ids: Vec<TermId> = keep.iter().copied().map(TermId).collect();
        let small = dict.restrict(&ids);
        prop_assert_eq!(small.len(), keep.len());
        for &id in &ids {
            let original = dict.entry(id);
            let new_id = small.lookup(&original.surface).expect("kept term");
            prop_assert_eq!(small.entry(new_id), original);
        }
    }

    /// Out-of-range ids are ignored by restrict, never a panic.
    #[test]
    fn restrict_ignores_unknown_ids(ids in proptest::collection::vec(0u32..1000, 0..40)) {
        let dict = TextureDictionary::gel_active();
        let ids: Vec<TermId> = ids.into_iter().map(TermId).collect();
        let small = dict.restrict(&ids);
        prop_assert!(small.len() <= dict.len());
    }

    /// Profile merge is associative with from_term_ids (any split point).
    #[test]
    fn merge_agrees_with_joint(ids in proptest::collection::vec(0u32..41, 0..30), split in 0usize..30) {
        let dict = TextureDictionary::gel_active();
        let ids: Vec<TermId> = ids.into_iter().map(TermId).collect();
        let cut = split.min(ids.len());
        let mut merged = TextureProfile::from_term_ids(&dict, &ids[..cut]);
        merged.merge(&TextureProfile::from_term_ids(&dict, &ids[cut..]));
        let joint = TextureProfile::from_term_ids(&dict, &ids);
        prop_assert_eq!(merged.total_terms, joint.total_terms);
        prop_assert!((merged.hardness_score - joint.hardness_score).abs() < 1e-9);
        prop_assert!((merged.cohesiveness_score - joint.cohesiveness_score).abs() < 1e-9);
        prop_assert_eq!(merged.category_counts, joint.category_counts);
    }
}

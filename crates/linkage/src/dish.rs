//! Within-topic dish analyses: the Fig. 3 histograms and the Fig. 4
//! scatter.
//!
//! For a reference dish (Bavarois or milk jelly) assigned to topic `t`:
//!
//! 1. take all recipes whose dominant topic is `t`;
//! 2. rank them by **discrete KL divergence** between their emulsion
//!    concentration profiles and the dish's (the paper's "order of KL
//!    divergence of emulsion concentrations");
//! 3. *Fig. 3*: split the ranking into equal-count bins and count texture
//!    terms by dictionary category — hardness vs softness (a), elastic vs
//!    cohesive (b);
//! 4. *Fig. 4*: place each recipe on the consolidated hardness /
//!    cohesiveness axes (softness is negative hardness, crumbly negative
//!    cohesiveness), colored by its KL value, with a star at the
//!    topic-level score (the paper's "similar classification of texture
//!    terms for topic 3").

use rheotex_core::FittedJointModel;
use rheotex_corpus::RecipeFeatures;
use rheotex_linalg::kl::kl_discrete;
use rheotex_linalg::Vector;
use rheotex_textures::{Category, TermId, TextureDictionary, TextureProfile};
use serde::{Deserialize, Serialize};

/// Smoothing added to emulsion profiles before the discrete KL (absent
/// emulsions are exact zeros).
pub const EMULSION_KL_SMOOTHING: f64 = 1e-3;

/// One bin of the Fig. 3 histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Bin {
    /// Bin index, 0 = most similar to the dish.
    pub bin: usize,
    /// KL range `[min, max]` of recipes in this bin.
    pub kl_range: (f64, f64),
    /// Number of recipes.
    pub n_recipes: usize,
    /// Total texture-term occurrences in the bin (denominator for rates).
    pub total_terms: usize,
    /// Term occurrences annotated `Hardness` (Fig. 3a, filled bars).
    pub hardness_terms: usize,
    /// Term occurrences annotated `Softness` (Fig. 3a, open bars).
    pub softness_terms: usize,
    /// Term occurrences annotated `Elasticity` (Fig. 3b).
    pub elastic_terms: usize,
    /// Term occurrences annotated `Cohesiveness` (Fig. 3b).
    pub cohesive_terms: usize,
}

/// One recipe point of the Fig. 4 scatter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Recipe id.
    pub recipe_id: u64,
    /// Hardness-axis score in `[-1, 1]`.
    pub hardness: f64,
    /// Cohesiveness-axis score in `[-1, 1]`.
    pub cohesiveness: f64,
    /// Emulsion KL divergence to the dish (the color channel).
    pub kl: f64,
}

/// The full Fig. 4 payload: recipe points plus the topic centroid star.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Scatter {
    /// Recipe points, sorted by ascending KL.
    pub points: Vec<Fig4Point>,
    /// Topic-level (φ-weighted) hardness score — the star's x.
    pub star_hardness: f64,
    /// Topic-level cohesiveness score — the star's y.
    pub star_cohesiveness: f64,
}

/// Augments a 6-emulsion concentration profile with its non-emulsion
/// remainder `max(0, 1 − Σe)`, turning it into a weight-composition
/// distribution. Without the remainder, KL on normalized profiles loses
/// the emulsion *magnitude* — a watery 20 %-milk recipe would look
/// identical to milk jelly's 79 %-milk one.
#[must_use]
pub fn augmented_profile(emulsions: &[f64]) -> Vector {
    let mut v = emulsions.to_vec();
    let rest = (1.0 - emulsions.iter().sum::<f64>()).max(0.0);
    v.push(rest);
    Vector::new(v)
}

/// Recipes of `topic` ranked by ascending emulsion-KL to `dish_emulsions`
/// (raw concentration profile, compared as weight-composition
/// distributions including the non-emulsion remainder). Returns
/// `(index into recipes, kl)`.
///
/// # Errors
/// KL failures on malformed profiles (negative entries).
pub fn rank_recipes_by_emulsion_kl(
    model: &FittedJointModel,
    recipes: &[RecipeFeatures],
    topic: usize,
    dish_emulsions: &[f64; 6],
) -> Result<Vec<(usize, f64)>, rheotex_core::ModelError> {
    let dish = augmented_profile(dish_emulsions);
    let mut ranked = Vec::new();
    for (i, f) in recipes.iter().enumerate() {
        if model.dominant_topic(i) != topic {
            continue;
        }
        let recipe_profile = augmented_profile(&f.emulsion_concentrations);
        let kl = kl_discrete(&recipe_profile, &dish, EMULSION_KL_SMOOTHING)
            .map_err(rheotex_core::ModelError::from)?;
        ranked.push((i, kl));
    }
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(ranked)
}

fn category_counts(
    dict: &TextureDictionary,
    terms: &[TermId],
) -> (usize, usize, usize, usize, usize) {
    let profile = TextureProfile::from_term_ids(dict, terms);
    (
        profile.total_terms,
        profile.count(Category::Hardness),
        profile.count(Category::Softness),
        profile.count(Category::Elasticity),
        profile.count(Category::Cohesiveness),
    )
}

/// Builds the Fig. 3 histogram for one dish.
///
/// `recipes` must be aligned with the model's documents (same order used
/// at fit time); `dict` is the (compact, gel-active) dictionary whose ids
/// match the recipes' term ids.
///
/// # Errors
/// Propagates ranking failures.
pub fn fig3_histogram(
    model: &FittedJointModel,
    recipes: &[RecipeFeatures],
    dict: &TextureDictionary,
    topic: usize,
    dish_emulsions: &[f64; 6],
    n_bins: usize,
) -> Result<Vec<Fig3Bin>, rheotex_core::ModelError> {
    let ranked = rank_recipes_by_emulsion_kl(model, recipes, topic, dish_emulsions)?;
    if ranked.is_empty() || n_bins == 0 {
        return Ok(Vec::new());
    }
    let n_bins = n_bins.min(ranked.len());
    let per_bin = ranked.len().div_ceil(n_bins);
    let mut bins = Vec::with_capacity(n_bins);
    for (b, chunk) in ranked.chunks(per_bin).enumerate() {
        let mut terms: Vec<TermId> = Vec::new();
        for &(i, _) in chunk {
            terms.extend(recipes[i].terms.iter().copied());
        }
        let (total, hard, soft, elastic, cohesive) = category_counts(dict, &terms);
        bins.push(Fig3Bin {
            bin: b,
            kl_range: (chunk[0].1, chunk[chunk.len() - 1].1),
            n_recipes: chunk.len(),
            total_terms: total,
            hardness_terms: hard,
            softness_terms: soft,
            elastic_terms: elastic,
            cohesive_terms: cohesive,
        });
    }
    Ok(bins)
}

/// Builds the Fig. 4 scatter for one dish.
///
/// # Errors
/// Propagates ranking failures.
pub fn fig4_scatter(
    model: &FittedJointModel,
    recipes: &[RecipeFeatures],
    dict: &TextureDictionary,
    topic: usize,
    dish_emulsions: &[f64; 6],
) -> Result<Fig4Scatter, rheotex_core::ModelError> {
    let ranked = rank_recipes_by_emulsion_kl(model, recipes, topic, dish_emulsions)?;
    let points = ranked
        .iter()
        .map(|&(i, kl)| {
            let profile = TextureProfile::from_term_ids(dict, &recipes[i].terms);
            Fig4Point {
                recipe_id: recipes[i].id,
                hardness: profile.hardness_score,
                cohesiveness: profile.cohesiveness_score,
                kl,
            }
        })
        .collect();

    // The star: φ-weighted axis scores over the topic's vocabulary.
    let mut star_hardness = 0.0;
    let mut star_cohesiveness = 0.0;
    let mut weight = 0.0;
    for (w, &p) in model.phi[topic].iter().enumerate() {
        if let Some(entry) = dict.get(TermId(w as u32)) {
            star_hardness += p * entry.hardness;
            star_cohesiveness += p * entry.cohesiveness;
            weight += p;
        }
    }
    if weight > 0.0 {
        star_hardness /= weight;
        star_cohesiveness /= weight;
    }
    Ok(Fig4Scatter {
        points,
        star_hardness,
        star_cohesiveness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_core::{JointConfig, JointTopicModel, ModelDoc};
    use rheotex_corpus::features::{emulsion_info_vector, gel_info_vector};
    use rheotex_textures::TextureDictionary;

    /// One gel band, but two emulsion styles: "creamy" recipes carry hard
    /// terms, "milky" recipes carry soft terms. Ranking by emulsion KL to
    /// a creamy dish must surface hard terms first.
    struct Fixture {
        model: FittedJointModel,
        recipes: Vec<RecipeFeatures>,
        dict: TextureDictionary,
    }

    fn fixture() -> Fixture {
        let dict = TextureDictionary::gel_active();
        let katai = dict.lookup("katai").unwrap();
        let muchi = dict.lookup("muchimuchi").unwrap();
        let furu = dict.lookup("furufuru").unwrap();
        let yuru = dict.lookup("yuruyuru").unwrap();

        let mut r = ChaCha8Rng::seed_from_u64(23);
        let mut recipes = Vec::new();
        let mut docs = Vec::new();
        for i in 0..100u64 {
            let creamy = i % 2 == 0;
            let jitter = 1.0 + r.gen_range(-0.1..0.1);
            let gel_conc = [0.025 * jitter, 0.0, 0.0];
            let emu_conc: [f64; 6] = if creamy {
                [0.0, 0.0, 0.08, 0.22 * jitter, 0.35, 0.0]
            } else {
                [0.05, 0.0, 0.0, 0.0, 0.75 * jitter, 0.0]
            };
            let terms = if creamy {
                vec![katai, muchi]
            } else {
                vec![furu, yuru]
            };
            let f = RecipeFeatures {
                id: i,
                terms: terms.clone(),
                gel: gel_info_vector(&gel_conc),
                emulsion: emulsion_info_vector(&emu_conc),
                gel_concentrations: gel_conc,
                emulsion_concentrations: emu_conc,
                unrelated_fraction: 0.0,
            };
            docs.push(ModelDoc::new(
                i,
                terms.iter().map(|t| t.index()).collect(),
                f.gel.clone(),
                f.emulsion.clone(),
            ));
            recipes.push(f);
        }
        // One topic: all recipes share the gel band (the paper's topic 3
        // situation).
        let model = JointTopicModel::new(JointConfig::quick(1, dict.len()))
            .unwrap()
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(24),
                &docs,
                rheotex_core::FitOptions::new(),
            )
            .unwrap();
        Fixture {
            model,
            recipes,
            dict,
        }
    }

    const CREAMY_DISH: [f64; 6] = [0.0, 0.0, 0.08, 0.2, 0.4, 0.0];

    #[test]
    fn ranking_puts_creamy_recipes_first() {
        let fx = fixture();
        let ranked = rank_recipes_by_emulsion_kl(&fx.model, &fx.recipes, 0, &CREAMY_DISH).unwrap();
        assert_eq!(ranked.len(), 100);
        // KL is non-decreasing.
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The first quartile should be dominated by creamy (even) recipes.
        let creamy_in_head = ranked[..25]
            .iter()
            .filter(|&&(i, _)| fx.recipes[i].id % 2 == 0)
            .count();
        assert!(creamy_in_head >= 23, "creamy in head: {creamy_in_head}");
    }

    #[test]
    fn fig3_low_kl_bins_skew_hard() {
        let fx = fixture();
        let bins = fig3_histogram(&fx.model, &fx.recipes, &fx.dict, 0, &CREAMY_DISH, 5).unwrap();
        assert_eq!(bins.len(), 5);
        // First bin: hard terms dominate; last bin: soft terms dominate.
        assert!(
            bins[0].hardness_terms > bins[0].softness_terms,
            "bin0 {bins:?}"
        );
        let last = &bins[bins.len() - 1];
        assert!(last.softness_terms > last.hardness_terms, "last {last:?}");
        // Elastic terms follow the hard (muchimuchi is elastic) recipes.
        assert!(bins[0].elastic_terms >= last.elastic_terms);
        // KL ranges are ordered across bins.
        for w in bins.windows(2) {
            assert!(w[0].kl_range.1 <= w[1].kl_range.0 + 1e-12);
        }
    }

    #[test]
    fn fig4_points_separate_by_kl_color() {
        let fx = fixture();
        let scatter = fig4_scatter(&fx.model, &fx.recipes, &fx.dict, 0, &CREAMY_DISH).unwrap();
        assert_eq!(scatter.points.len(), 100);
        // Low-KL (creamy/hard) points sit right of high-KL (soft) points.
        let low: f64 = scatter.points[..30].iter().map(|p| p.hardness).sum();
        let high: f64 = scatter.points[70..].iter().map(|p| p.hardness).sum();
        assert!(
            low / 30.0 > high / 30.0 + 0.5,
            "low {low:.2} vs high {high:.2}"
        );
        // The star is the φ-weighted blend of all four terms — between the
        // two groups on the hardness axis.
        assert!(scatter.star_hardness < low / 30.0);
        assert!(scatter.star_hardness > high / 30.0);
    }

    #[test]
    fn empty_topic_yields_empty_outputs() {
        let fx = fixture();
        // Topic index 0 is the only topic; ask for the fig3 of a topic the
        // model never assigns by fitting K=1 and querying bins with 0
        // recipes via an impossible topic... instead: n_bins = 0.
        let bins = fig3_histogram(&fx.model, &fx.recipes, &fx.dict, 0, &CREAMY_DISH, 0).unwrap();
        assert!(bins.is_empty());
    }

    #[test]
    fn bins_partition_all_topic_recipes() {
        let fx = fixture();
        let bins = fig3_histogram(&fx.model, &fx.recipes, &fx.dict, 0, &CREAMY_DISH, 7).unwrap();
        let total: usize = bins.iter().map(|b| b.n_recipes).sum();
        assert_eq!(total, 100);
    }
}

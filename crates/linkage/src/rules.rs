//! Term ↔ concentration association rules (the paper's stated future
//! work: "detect rules bridging between recipe information including
//! ingredient concentrations … and sensory textures").
//!
//! For each texture term, this module aggregates the gel compositions of
//! the recipes that use it and summarizes the association as a rule:
//! *"katai ⇒ gelatin ≈ 4.7 % (lift 3.2, support 41)"*. Lift compares the
//! term's probability inside the concentration band against its corpus
//! base rate — the standard association-rule quality measure.

use rheotex_corpus::RecipeFeatures;
use rheotex_textures::{TermId, TextureDictionary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One mined rule: a texture term and the gel composition it signals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermRule {
    /// The texture term.
    pub term: TermId,
    /// Surface form (for reporting).
    pub surface: String,
    /// Number of recipes using the term (support).
    pub support: usize,
    /// Mean gel concentrations (gelatin, kanten, agar) over supporting
    /// recipes.
    pub mean_gels: [f64; 3],
    /// The dominant gel index and its mean concentration.
    pub dominant_gel: (usize, f64),
    /// Lift of the term inside its dominant gel's concentration band
    /// (± one band half-width around the mean) vs the corpus base rate.
    pub lift: f64,
}

/// Half-width of the concentration band used for lift computation,
/// relative to the rule's mean concentration.
const BAND_RELATIVE_HALF_WIDTH: f64 = 0.5;

/// Mines per-term rules from recipe features. Terms with support below
/// `min_support` are skipped.
#[must_use]
pub fn mine_term_rules(
    recipes: &[RecipeFeatures],
    dict: &TextureDictionary,
    min_support: usize,
) -> Vec<TermRule> {
    if recipes.is_empty() {
        return Vec::new();
    }
    // Support and gel sums per term (counting each recipe once per term).
    let mut per_term: HashMap<TermId, (usize, [f64; 3])> = HashMap::new();
    for f in recipes {
        let mut seen = std::collections::HashSet::new();
        for &t in &f.terms {
            if seen.insert(t) {
                let e = per_term.entry(t).or_insert((0, [0.0; 3]));
                e.0 += 1;
                for (acc, &c) in e.1.iter_mut().zip(&f.gel_concentrations) {
                    *acc += c;
                }
            }
        }
    }

    let n_total = recipes.len() as f64;
    let mut rules: Vec<TermRule> = per_term
        .into_iter()
        .filter(|(_, (support, _))| *support >= min_support.max(1))
        .filter_map(|(term, (support, sums))| {
            let entry = dict.get(term)?;
            let mean_gels = [
                sums[0] / support as f64,
                sums[1] / support as f64,
                sums[2] / support as f64,
            ];
            let mut dom = 0;
            for g in 1..3 {
                if mean_gels[g] > mean_gels[dom] {
                    dom = g;
                }
            }
            let center = mean_gels[dom];
            if center <= 0.0 {
                return None;
            }
            // Band membership.
            let lo = center * (1.0 - BAND_RELATIVE_HALF_WIDTH);
            let hi = center * (1.0 + BAND_RELATIVE_HALF_WIDTH);
            let in_band = |f: &RecipeFeatures| {
                let c = f.gel_concentrations[dom];
                c >= lo && c <= hi
            };
            let band_total = recipes.iter().filter(|f| in_band(f)).count();
            let band_with_term = recipes
                .iter()
                .filter(|f| in_band(f) && f.terms.contains(&term))
                .count();
            let p_term = support as f64 / n_total;
            let lift = if band_total == 0 || p_term <= 0.0 {
                // A bimodal term whose mean lands between its own modes
                // has no band evidence: no association either way.
                1.0
            } else {
                (band_with_term as f64 / band_total as f64) / p_term
            };
            Some(TermRule {
                term,
                surface: entry.surface.clone(),
                support,
                mean_gels,
                dominant_gel: (dom, center),
                lift,
            })
        })
        .collect();
    rules.sort_by(|a, b| {
        b.lift
            .partial_cmp(&a.lift)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.support.cmp(&a.support))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheotex_corpus::features::{emulsion_info_vector, gel_info_vector};
    use rheotex_textures::TextureDictionary;

    /// 60 recipes: "katai" only in high-gelatin recipes, "furufuru" only
    /// in low-gelatin ones, "omoi" everywhere (no association).
    fn recipes(dict: &TextureDictionary) -> Vec<RecipeFeatures> {
        let katai = dict.lookup("katai").unwrap();
        let furu = dict.lookup("furufuru").unwrap();
        let omoi = dict.lookup("omoi").unwrap();
        (0..60u64)
            .map(|i| {
                let high = i % 2 == 0;
                let gel = if high { 0.05 } else { 0.008 };
                let gel_conc = [gel, 0.0, 0.0];
                RecipeFeatures {
                    id: i,
                    terms: if high {
                        vec![katai, omoi]
                    } else {
                        vec![furu, omoi]
                    },
                    gel: gel_info_vector(&gel_conc),
                    emulsion: emulsion_info_vector(&[0.0; 6]),
                    gel_concentrations: gel_conc,
                    emulsion_concentrations: [0.0; 6],
                    unrelated_fraction: 0.0,
                }
            })
            .collect()
    }

    #[test]
    fn mined_rules_recover_planted_associations() {
        let dict = TextureDictionary::gel_active();
        let rules = mine_term_rules(&recipes(&dict), &dict, 5);
        let find = |s: &str| rules.iter().find(|r| r.surface == s).unwrap();

        let katai = find("katai");
        assert_eq!(katai.support, 30);
        assert!((katai.dominant_gel.1 - 0.05).abs() < 1e-9);
        // katai appears in every high-band recipe but only half the
        // corpus: lift 2.
        assert!((katai.lift - 2.0).abs() < 1e-9, "lift {}", katai.lift);

        let furu = find("furufuru");
        assert!((furu.dominant_gel.1 - 0.008).abs() < 1e-9);
        assert!((furu.lift - 2.0).abs() < 1e-9);

        // The ubiquitous term has no lift.
        let omoi = find("omoi");
        assert!((omoi.lift - 1.0).abs() < 0.2, "lift {}", omoi.lift);
    }

    #[test]
    fn rules_sorted_by_lift() {
        let dict = TextureDictionary::gel_active();
        let rules = mine_term_rules(&recipes(&dict), &dict, 5);
        for w in rules.windows(2) {
            assert!(w[0].lift >= w[1].lift - 1e-12);
        }
    }

    #[test]
    fn min_support_prunes() {
        let dict = TextureDictionary::gel_active();
        let rules = mine_term_rules(&recipes(&dict), &dict, 31);
        // Only "omoi" (support 60) survives.
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].surface, "omoi");
    }

    #[test]
    fn empty_input() {
        let dict = TextureDictionary::gel_active();
        assert!(mine_term_rules(&[], &dict, 1).is_empty());
    }
}

//! Topic ↔ rheology linkage (paper Section III-C-4 and Section V).
//!
//! Once the joint model has produced topics that pair texture-term
//! distributions with gel-concentration Gaussians, this crate closes the
//! loop to quantitative texture:
//!
//! * [`encode`] — bridges the corpus crate's [`rheotex_corpus::Dataset`]
//!   into the model crate's [`rheotex_core::ModelDoc`]s.
//! * [`assign`] — links each empirical food-science setting (Table I
//!   rows, Table II(b) dishes) to its most similar topic by KL divergence
//!   between a narrow measurement Gaussian at the setting and the topic's
//!   gel Gaussian. This regenerates the last column of Table II(a) and
//!   the "Assigned topic" column of Table II(b).
//! * [`dish`] — the within-topic analyses of Section V-B: recipes of the
//!   assigned topic ranked by discrete KL divergence of emulsion
//!   concentration profiles against a reference dish, aggregated into the
//!   Fig. 3 category histograms and the Fig. 4 hardness/cohesiveness
//!   scatter (with the topic-centroid star).
//! * [`metrics`] — purity, NMI, and adjusted Rand index against the
//!   synthetic generator's ground-truth archetypes (extension E7; the
//!   paper had no ground truth to score against).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod assign;
pub mod dish;
pub mod encode;
pub mod metrics;
pub mod rules;

pub use assign::{assign_settings, SettingAssignment};
pub use dish::{fig3_histogram, fig4_scatter, Fig3Bin, Fig4Point, Fig4Scatter};
pub use encode::{dataset_to_docs, docs_with_labels};
pub use metrics::{adjusted_rand_index, normalized_mutual_information, purity};
pub use rules::{mine_term_rules, TermRule};

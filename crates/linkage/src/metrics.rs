//! Clustering-recovery metrics against ground-truth labels.
//!
//! The synthetic corpus knows which archetype generated each recipe, so —
//! unlike the paper — we can score how well each inference engine recovers
//! the latent structure. Standard external clustering metrics:
//!
//! * [`purity`] — fraction of documents whose cluster's majority truth
//!   label matches theirs; easy to read, biased toward many clusters.
//! * [`normalized_mutual_information`] — information-theoretic agreement
//!   in `[0, 1]`.
//! * [`adjusted_rand_index`] — pair-counting agreement corrected for
//!   chance; 0 ≈ random, 1 = perfect.

use std::collections::HashMap;

fn contingency(pred: &[usize], truth: &[usize]) -> HashMap<(usize, usize), usize> {
    let mut table = HashMap::new();
    for (&p, &t) in pred.iter().zip(truth.iter()) {
        *table.entry((p, t)).or_insert(0) += 1;
    }
    table
}

fn counts(labels: &[usize]) -> HashMap<usize, usize> {
    let mut c = HashMap::new();
    for &l in labels {
        *c.entry(l).or_insert(0) += 1;
    }
    c
}

/// Purity of `pred` against `truth`. Returns 0 for empty input.
///
/// # Panics
/// Panics if the slices have different lengths (caller bug).
#[must_use]
pub fn purity(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label slices must align");
    if pred.is_empty() {
        return 0.0;
    }
    let table = contingency(pred, truth);
    let mut best_per_cluster: HashMap<usize, usize> = HashMap::new();
    for (&(p, _), &n) in &table {
        let e = best_per_cluster.entry(p).or_insert(0);
        *e = (*e).max(n);
    }
    best_per_cluster.values().sum::<usize>() as f64 / pred.len() as f64
}

/// Normalized mutual information (arithmetic-mean normalization),
/// in `[0, 1]`. Returns 0 when either partition has a single class with
/// zero entropy against a multi-class other; 1 when both are single-class
/// and identical in structure (degenerate but consistent).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn normalized_mutual_information(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label slices must align");
    let n = pred.len() as f64;
    if pred.is_empty() {
        return 0.0;
    }
    let table = contingency(pred, truth);
    let cp = counts(pred);
    let ct = counts(truth);
    let mut mi = 0.0;
    for (&(p, t), &npt) in &table {
        let npt = npt as f64;
        let np = cp[&p] as f64;
        let nt = ct[&t] as f64;
        mi += npt / n * ((npt * n) / (np * nt)).ln();
    }
    let entropy = |c: &HashMap<usize, usize>| -> f64 {
        c.values()
            .map(|&v| {
                let f = v as f64 / n;
                -f * f.ln()
            })
            .sum()
    };
    let hp = entropy(&cp);
    let ht = entropy(&ct);
    let denom = 0.5 * (hp + ht);
    if denom <= 0.0 {
        // Both partitions are single-class: identical by construction.
        return 1.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

/// Adjusted Rand index. 0 ≈ chance agreement, 1 = identical partitions
/// (up to relabeling); can be negative for worse-than-chance.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn adjusted_rand_index(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label slices must align");
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let table = contingency(pred, truth);
    let sum_pairs: f64 = table.values().map(|&v| choose2(v)).sum();
    let sum_p: f64 = counts(pred).values().map(|&v| choose2(v)).sum();
    let sum_t: f64 = counts(truth).values().map(|&v| choose2(v)).sum();
    let total = choose2(n);
    let expected = sum_p * sum_t / total;
    let max_index = 0.5 * (sum_p + sum_t);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both partitions degenerate and equal
    }
    (sum_pairs - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery_up_to_relabeling() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![2, 2, 0, 0, 1, 1]; // same partition, renamed
        assert_eq!(purity(&pred, &truth), 1.0);
        assert!((normalized_mutual_information(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_assignment_scores_low() {
        // Alternating pred vs block truth: no information.
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&pred, &truth).abs() < 0.3);
        assert!(normalized_mutual_information(&pred, &truth) < 0.1);
        assert!((purity(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_is_intermediate() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 1, 1]; // one point misplaced
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari > 0.3 && ari < 1.0, "ari {ari}");
        let nmi = normalized_mutual_information(&pred, &truth);
        assert!(nmi > 0.3 && nmi < 1.0, "nmi {nmi}");
        assert!((purity(&pred, &truth) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_prediction() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        assert_eq!(purity(&pred, &truth), 0.5);
        assert!(normalized_mutual_information(&pred, &truth) < 1e-12);
        assert!(adjusted_rand_index(&pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn over_clustering_inflates_purity_but_not_ari() {
        // Every point its own cluster: purity 1, ARI ≈ 0.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 2, 3];
        assert_eq!(purity(&pred, &truth), 1.0);
        assert!(adjusted_rand_index(&pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(purity(&[], &[]), 0.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 0.0);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        // Both single-class.
        assert_eq!(normalized_mutual_information(&[0, 0], &[1, 1]), 1.0);
        assert_eq!(adjusted_rand_index(&[0, 0], &[1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "label slices must align")]
    fn mismatched_lengths_panic() {
        let _ = purity(&[0, 1], &[0]);
    }
}

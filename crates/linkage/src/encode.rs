//! Bridging the corpus dataset into model documents.

use rheotex_core::ModelDoc;
use rheotex_corpus::Dataset;

/// Converts a filtered dataset into model documents: term ids become
/// vocabulary indices (they already are — the dataset's dictionary is
/// compact), and the information-quantity vectors pass through.
#[must_use]
pub fn dataset_to_docs(dataset: &Dataset) -> Vec<ModelDoc> {
    dataset
        .features
        .iter()
        .map(|f| {
            ModelDoc::new(
                f.id,
                f.terms.iter().map(|t| t.index()).collect(),
                f.gel.clone(),
                f.emulsion.clone(),
            )
        })
        .collect()
}

/// Returns `(docs, labels)` pairs for recovery scoring; labels are empty
/// when the dataset has no ground truth.
#[must_use]
pub fn docs_with_labels(dataset: &Dataset) -> (Vec<ModelDoc>, Vec<usize>) {
    (dataset_to_docs(dataset), dataset.labels.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_corpus::synth::{generate, SynthConfig};
    use rheotex_corpus::{DatasetFilter, IngredientDb};
    use rheotex_textures::TextureDictionary;

    fn dataset() -> Dataset {
        let db = IngredientDb::builtin();
        let dict = TextureDictionary::comprehensive();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let corpus = generate(&mut rng, &SynthConfig::small(150), &db).unwrap();
        Dataset::build(
            &corpus.recipes,
            &corpus.labels,
            &db,
            &dict,
            DatasetFilter::default(),
        )
        .unwrap()
    }

    #[test]
    fn docs_align_with_features() {
        let ds = dataset();
        let docs = dataset_to_docs(&ds);
        assert_eq!(docs.len(), ds.len());
        for (doc, f) in docs.iter().zip(&ds.features) {
            assert_eq!(doc.id, f.id);
            assert_eq!(doc.terms.len(), f.terms.len());
            assert_eq!(doc.gel.len(), 3);
            assert_eq!(doc.emulsion.len(), 6);
        }
    }

    #[test]
    fn labels_stay_aligned() {
        let ds = dataset();
        let (docs, labels) = docs_with_labels(&ds);
        assert_eq!(docs.len(), labels.len());
    }
}

//! Assigning empirical gel settings to topics by KL divergence.
//!
//! Paper, Section III-C-4: *"Kullback-Leibler divergence is applied for
//! deriving most similar topic to the settings of the research. … only
//! the gel ingredient concentrations are used for the comparison."*
//!
//! Each setting (a point in gel-concentration space) is encoded with the
//! same `−ln` transform the recipes use, wrapped in a narrow measurement
//! Gaussian, and compared against every topic's gel Gaussian with
//! [`rheotex_linalg::kl::kl_point_gaussian`]; the topic with the smallest
//! divergence wins. The same machinery assigns the Table II(b) dishes.

use rheotex_core::FittedJointModel;
use rheotex_corpus::features::gel_info_vector;
use rheotex_linalg::kl::kl_point_gaussian;
use rheotex_linalg::Vector;
use serde::{Deserialize, Serialize};

/// Width of the measurement Gaussian around an empirical setting
/// (information-quantity units). Small relative to topic spreads so the
/// ranking is dominated by the topic Gaussian's likelihood of the setting.
pub const MEASUREMENT_EPS: f64 = 0.05;

/// The linkage result for one empirical setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettingAssignment {
    /// Caller-supplied id (Table I row id, or a dish index).
    pub setting_id: u32,
    /// Best topic.
    pub topic: usize,
    /// KL divergence to the best topic.
    pub kl: f64,
    /// KL divergence to every topic (index = topic).
    pub all_kl: Vec<f64>,
}

impl SettingAssignment {
    /// Topics sorted by ascending divergence (best first).
    #[must_use]
    pub fn ranking(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.all_kl.iter().copied().enumerate().collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

/// Assigns one gel setting (raw concentrations) to its most similar topic.
///
/// # Errors
/// Numerical failures extracting topic Gaussians (should not occur for a
/// fitted model).
pub fn assign_setting(
    model: &FittedJointModel,
    setting_id: u32,
    gels: [f64; 3],
) -> rheotex_core::Result<SettingAssignment> {
    let x = gel_info_vector(&gels);
    assign_vector(model, setting_id, &x)
}

/// Assigns a pre-encoded information-quantity vector to a topic.
///
/// # Errors
/// As [`assign_setting`].
pub fn assign_vector(
    model: &FittedJointModel,
    setting_id: u32,
    x: &Vector,
) -> rheotex_core::Result<SettingAssignment> {
    let k = model.n_topics();
    let mut all_kl = Vec::with_capacity(k);
    for kk in 0..k {
        let g = model.gel_gaussian(kk)?;
        let cov = g.covariance();
        let kl = kl_point_gaussian(x, g.mean(), &cov, MEASUREMENT_EPS)
            .map_err(rheotex_core::ModelError::from)?;
        all_kl.push(kl);
    }
    let (topic, &kl) = all_kl
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("n_topics >= 1");
    Ok(SettingAssignment {
        setting_id,
        topic,
        kl,
        all_kl,
    })
}

/// Assigns a batch of settings, e.g. all 13 Table I rows.
///
/// # Errors
/// As [`assign_setting`].
pub fn assign_settings(
    model: &FittedJointModel,
    settings: &[(u32, [f64; 3])],
) -> rheotex_core::Result<Vec<SettingAssignment>> {
    settings
        .iter()
        .map(|&(id, gels)| assign_setting(model, id, gels))
        .collect()
}

/// Inverts a batch of assignments into per-topic lists — the "Table I"
/// column of Table II(a): which empirical rows each topic explains.
#[must_use]
pub fn rows_per_topic(assignments: &[SettingAssignment], n_topics: usize) -> Vec<Vec<u32>> {
    let mut per_topic = vec![Vec::new(); n_topics];
    for a in assignments {
        per_topic[a.topic].push(a.setting_id);
    }
    per_topic
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_core::{JointConfig, JointTopicModel, ModelDoc};
    use rheotex_corpus::features::gel_info_vector;

    /// Fits a tiny model with two gel bands: ~2% gelatin and ~1% kanten.
    fn fitted() -> FittedJointModel {
        let mut r = ChaCha8Rng::seed_from_u64(19);
        let docs: Vec<ModelDoc> = (0..80)
            .map(|i| {
                let c = i % 2;
                let jitter = 1.0 + r.gen_range(-0.1..0.1);
                let gels = if c == 0 {
                    [0.02 * jitter, 0.0, 0.0]
                } else {
                    [0.0, 0.01 * jitter, 0.0]
                };
                ModelDoc::new(
                    i as u64,
                    vec![c],
                    gel_info_vector(&gels),
                    Vector::full(6, 9.2),
                )
            })
            .collect();
        JointTopicModel::new(JointConfig::quick(2, 2))
            .unwrap()
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(20),
                &docs,
                rheotex_core::FitOptions::new(),
            )
            .unwrap()
    }

    #[test]
    fn settings_map_to_matching_gel_band() {
        let model = fitted();
        // A gelatin setting near 2% must pick the gelatin topic; a kanten
        // setting near 1% the kanten topic.
        let a = assign_setting(&model, 1, [0.02, 0.0, 0.0]).unwrap();
        let b = assign_setting(&model, 2, [0.0, 0.01, 0.0]).unwrap();
        assert_ne!(a.topic, b.topic);
        // And they should be *strongly* separated.
        assert!(a.all_kl[b.topic] > a.kl * 2.0);
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let model = fitted();
        let a = assign_setting(&model, 1, [0.02, 0.0, 0.0]).unwrap();
        let r = a.ranking();
        assert_eq!(r.len(), 2);
        assert!(r[0].1 <= r[1].1);
        assert_eq!(r[0].0, a.topic);
    }

    #[test]
    fn batch_assignment_and_inversion() {
        let model = fitted();
        let settings = vec![
            (1, [0.018, 0.0, 0.0]),
            (2, [0.022, 0.0, 0.0]),
            (3, [0.0, 0.009, 0.0]),
        ];
        let assignments = assign_settings(&model, &settings).unwrap();
        assert_eq!(assignments.len(), 3);
        // Rows 1 and 2 (gelatin) share a topic; row 3 (kanten) differs.
        assert_eq!(assignments[0].topic, assignments[1].topic);
        assert_ne!(assignments[0].topic, assignments[2].topic);

        let per_topic = rows_per_topic(&assignments, model.n_topics());
        assert_eq!(per_topic[assignments[0].topic], vec![1, 2]);
        assert_eq!(per_topic[assignments[2].topic], vec![3]);
    }

    #[test]
    fn nearer_settings_have_smaller_kl() {
        let model = fitted();
        let near = assign_setting(&model, 1, [0.02, 0.0, 0.0]).unwrap();
        let far = assign_setting(&model, 2, [0.05, 0.0, 0.0]).unwrap();
        // Both pick the gelatin topic, but the near one with smaller KL.
        assert_eq!(near.topic, far.topic);
        assert!(near.kl < far.kl);
    }
}

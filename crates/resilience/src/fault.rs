//! Deterministic fault injection (feature `fault-inject`).
//!
//! Recovery code that is never executed is recovery code that does not
//! work. This module lets tests *schedule* failures precisely — "the
//! 3rd checkpoint write fails", "the 5th is torn mid-frame" — instead of
//! hoping a race or a flaky disk happens to exercise them. Plans are
//! pure data plus an atomic counter, so injected runs are exactly
//! reproducible.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use rheotex_linalg::dist::GaussianStats;
use rheotex_linalg::Vector;

/// What the fault plan has decided about one checkpoint write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write proceeds normally.
    None,
    /// The write fails outright (as if the disk returned an error).
    Fail,
    /// The write lands but only a torn prefix of the frame reaches disk.
    Truncate,
}

/// A deterministic schedule of injected checkpoint-write faults.
///
/// Writes are numbered from 0 in the order
/// [`CheckpointStore::save`](crate::CheckpointStore::save) attempts
/// them; the sets below pick which occurrences misbehave. `Fail` wins
/// when a write is listed in both sets.
#[derive(Debug, Default)]
pub struct FaultPlan {
    writes: AtomicU64,
    fail_writes: BTreeSet<u64>,
    truncate_writes: BTreeSet<u64>,
    reads: AtomicU64,
    fail_reads: BTreeSet<u64>,
}

impl FaultPlan {
    /// Creates an empty plan that injects nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the `n`-th write (0-based) to fail with an I/O error.
    pub fn fail_write(mut self, n: u64) -> Self {
        self.fail_writes.insert(n);
        self
    }

    /// Schedules the `n`-th write (0-based) to be torn: only a prefix of
    /// the frame reaches disk, simulating a crash mid-write.
    pub fn truncate_write(mut self, n: u64) -> Self {
        self.truncate_writes.insert(n);
        self
    }

    /// Schedules the `n`-th load (0-based) to fail with a *transient*
    /// I/O error before any bytes are read — the fault the bounded
    /// retry in [`CheckpointStore::load_with_retry`]
    /// (crate::CheckpointStore::load_with_retry) exists to absorb.
    pub fn fail_read(mut self, n: u64) -> Self {
        self.fail_reads.insert(n);
        self
    }

    /// Consumes one read slot and reports whether it was scheduled to
    /// fail.
    pub fn on_read(&self) -> bool {
        let n = self.reads.fetch_add(1, Ordering::SeqCst);
        self.fail_reads.contains(&n)
    }

    /// Number of reads the plan has adjudicated so far.
    pub fn reads_seen(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Consumes one write slot and reports the fault (if any) scheduled
    /// for it.
    pub fn on_write(&self) -> WriteFault {
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        if self.fail_writes.contains(&n) {
            WriteFault::Fail
        } else if self.truncate_writes.contains(&n) {
            WriteFault::Truncate
        } else {
            WriteFault::None
        }
    }

    /// Number of writes the plan has adjudicated so far.
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }
}

/// Corrupts a sufficient-statistics accumulator so that its centered
/// scatter matrix is indefinite, while leaving its observation count —
/// the only integer invariant resume validation can recompute — intact.
///
/// Adds `(magnitude, 0, …)` and removes `(0, magnitude, 0, …)`: the net
/// count change is zero, but the raw scatter picks up `-magnitude²` on
/// one diagonal entry, which drives the Normal–Wishart posterior scale
/// matrix non-positive-definite. A resumed fit must then survive via the
/// ridge-jitter retry path rather than a clean Cholesky.
///
/// # Panics
///
/// Panics if `stats` has fewer than two dimensions (the corruption
/// needs two distinct axes); test-only code, so this is acceptable.
pub fn corrupt_scatter(stats: &mut GaussianStats, magnitude: f64) {
    let d = stats.dim();
    assert!(d >= 2, "corrupt_scatter needs dim >= 2, got {d}");
    let mut add = vec![0.0; d];
    add[0] = magnitude;
    let mut remove = vec![0.0; d];
    remove[1] = magnitude;
    // Dimensions come from `stats` itself and the add precedes the
    // remove, so neither call can fail.
    stats.add(&Vector::new(add)).expect("matching dimension");
    stats
        .remove(&Vector::new(remove))
        .expect("non-empty accumulator");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        for _ in 0..10 {
            assert_eq!(plan.on_write(), WriteFault::None);
        }
        assert_eq!(plan.writes_seen(), 10);
    }

    #[test]
    fn schedule_fires_on_exact_occurrences() {
        let plan = FaultPlan::new().fail_write(1).truncate_write(3);
        let seen: Vec<WriteFault> = (0..5).map(|_| plan.on_write()).collect();
        assert_eq!(
            seen,
            vec![
                WriteFault::None,
                WriteFault::Fail,
                WriteFault::None,
                WriteFault::Truncate,
                WriteFault::None,
            ]
        );
    }

    #[test]
    fn read_schedule_fires_on_exact_occurrences() {
        let plan = FaultPlan::new().fail_read(0).fail_read(2);
        let seen: Vec<bool> = (0..4).map(|_| plan.on_read()).collect();
        assert_eq!(seen, vec![true, false, true, false]);
        assert_eq!(plan.reads_seen(), 4);
    }

    #[test]
    fn fail_wins_over_truncate_on_the_same_write() {
        let plan = FaultPlan::new().fail_write(0).truncate_write(0);
        assert_eq!(plan.on_write(), WriteFault::Fail);
    }

    #[test]
    fn corrupt_scatter_preserves_count_but_breaks_the_scatter() {
        let mut stats = GaussianStats::new(3);
        for i in 0..6 {
            let x = f64::from(i);
            stats.add(&Vector::new(vec![x, x * 0.5, 1.0 - x])).unwrap();
        }
        let before = stats.count();
        corrupt_scatter(&mut stats, 1e3);
        assert_eq!(stats.count(), before);
    }
}

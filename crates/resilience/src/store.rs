//! Atomic on-disk persistence of the latest sampler snapshot.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use rheotex_core::SamplerSnapshot;

use crate::error::ResilienceError;
use crate::format::{decode_frame, encode_frame};
use crate::Result;

#[cfg(feature = "fault-inject")]
use crate::fault::{FaultPlan, WriteFault};

/// File name of the current checkpoint inside a store directory.
pub const CHECKPOINT_FILE: &str = "latest.ckpt";

/// File name of the in-flight temporary used by atomic replacement.
const CHECKPOINT_TEMP: &str = "latest.ckpt.tmp";

/// Persists one "latest" checkpoint per directory.
///
/// Saving serializes the snapshot, wraps it in the versioned CRC frame
/// ([`crate::format`]), writes it to a temporary file, `sync_all`s, and
/// renames over [`CHECKPOINT_FILE`]. Because the rename is the only
/// mutation of the visible path, a crash at any point leaves either the
/// previous checkpoint or the new one — never a torn hybrid (a torn
/// *temp* file is simply overwritten by the next save).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    #[cfg(feature = "fault-inject")]
    faults: Option<FaultPlan>,
}

impl CheckpointStore {
    /// Creates a store rooted at `dir`. The directory is created lazily
    /// on the first save.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// Attaches a deterministic fault schedule to this store's writes.
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint file (whether or not it exists yet).
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Whether a checkpoint file is present.
    pub fn exists(&self) -> bool {
        self.checkpoint_path().is_file()
    }

    /// Atomically replaces the stored checkpoint with `snapshot`.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] if any filesystem step fails (including
    /// injected faults under the `fault-inject` feature), and
    /// [`ResilienceError::Corrupt`] if the snapshot cannot be
    /// serialized.
    pub fn save(&self, snapshot: &SamplerSnapshot) -> Result<()> {
        let payload = serde_json::to_vec(snapshot).map_err(|e| ResilienceError::Corrupt {
            what: format!("serialize snapshot: {e}"),
        })?;
        let frame = encode_frame(&payload);

        fs::create_dir_all(&self.dir).map_err(|e| ResilienceError::Io {
            what: format!("create {}: {e}", self.dir.display()),
        })?;

        let tmp = self.dir.join(CHECKPOINT_TEMP);
        self.write_frame(&tmp, &frame)?;

        let dst = self.checkpoint_path();
        fs::rename(&tmp, &dst).map_err(|e| ResilienceError::Io {
            what: format!("rename {} -> {}: {e}", tmp.display(), dst.display()),
        })?;
        Ok(())
    }

    #[cfg(feature = "fault-inject")]
    fn write_frame(&self, tmp: &Path, frame: &[u8]) -> Result<()> {
        let fault = self
            .faults
            .as_ref()
            .map_or(WriteFault::None, FaultPlan::on_write);
        let frame = match fault {
            WriteFault::Fail => {
                return Err(ResilienceError::Io {
                    what: format!("write {}: injected write failure", tmp.display()),
                });
            }
            // A torn write: only half the frame reaches disk. The rename
            // still happens — this models a crash *after* rename was
            // queued but before the data blocks were flushed.
            WriteFault::Truncate => &frame[..frame.len() / 2],
            WriteFault::None => frame,
        };
        write_all_synced(tmp, frame)
    }

    #[cfg(not(feature = "fault-inject"))]
    fn write_frame(&self, tmp: &Path, frame: &[u8]) -> Result<()> {
        write_all_synced(tmp, frame)
    }

    /// Loads and validates the stored checkpoint.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::NoCheckpoint`] when the file is absent; the
    /// full range of frame errors ([`ResilienceError::BadMagic`],
    /// [`ResilienceError::UnsupportedVersion`],
    /// [`ResilienceError::Truncated`], [`ResilienceError::CrcMismatch`],
    /// [`ResilienceError::Corrupt`]) when it is present but unusable.
    pub fn load(&self) -> Result<SamplerSnapshot> {
        let path = self.checkpoint_path();
        #[cfg(feature = "fault-inject")]
        if self.faults.as_ref().is_some_and(FaultPlan::on_read) {
            return Err(ResilienceError::Io {
                what: format!("read {}: injected read failure", path.display()),
            });
        }
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ResilienceError::NoCheckpoint {
                    path: path.display().to_string(),
                });
            }
            Err(e) => {
                return Err(ResilienceError::Io {
                    what: format!("read {}: {e}", path.display()),
                });
            }
        };
        let payload = decode_frame(&bytes)?;
        serde_json::from_slice(payload).map_err(|e| ResilienceError::Corrupt {
            what: format!("deserialize snapshot: {e}"),
        })
    }

    /// [`CheckpointStore::load`] with bounded retry of *transient*
    /// failures (see [`ResilienceError::is_transient`]).
    ///
    /// Up to `max_retries` extra attempts are made; before each retry
    /// the `backoff` hook is called with the 0-based index of the retry
    /// about to run. Production callers put the sleep there; tests pass
    /// a recording closure, which keeps the retry loop itself fully
    /// deterministic. Permanent diagnoses (bad magic, CRC mismatch,
    /// corrupt payload, missing file, …) return immediately — retrying
    /// them would reread the same bytes.
    ///
    /// # Errors
    ///
    /// The final attempt's error when every attempt fails, or the first
    /// permanent error encountered.
    pub fn load_with_retry(
        &self,
        max_retries: usize,
        mut backoff: impl FnMut(usize),
    ) -> Result<SamplerSnapshot> {
        let mut last = None;
        for attempt in 0..=max_retries {
            if attempt > 0 {
                backoff(attempt - 1);
            }
            match self.load() {
                Ok(snapshot) => return Ok(snapshot),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("loop ran at least once"))
    }
}

fn write_all_synced(path: &Path, bytes: &[u8]) -> Result<()> {
    let io_err = |op: &str, e: std::io::Error| ResilienceError::Io {
        what: format!("{op} {}: {e}", path.display()),
    };
    let mut file = File::create(path).map_err(|e| io_err("create", e))?;
    file.write_all(bytes).map_err(|e| io_err("write", e))?;
    file.sync_all().map_err(|e| io_err("sync", e))?;
    Ok(())
}

//! Typed failure modes for checkpoint persistence.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong while writing or reading a checkpoint.
///
/// Every variant is a *diagnosis*, not a panic: callers decide whether a
/// bad checkpoint aborts the run (strict mode) or merely costs the
/// progress since the last good one (tolerant mode / fresh restart).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceError {
    /// An operating-system I/O operation failed (open, write, sync,
    /// rename, read).
    Io {
        /// Which operation failed, with the underlying OS error text.
        what: String,
    },
    /// The file does not start with the `RTEXCKPT` magic — it is not a
    /// rheotex checkpoint at all.
    BadMagic,
    /// The frame was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// The version number found in the frame header.
        found: u32,
    },
    /// The file ends before the header-declared payload does — a torn
    /// or interrupted write.
    Truncated,
    /// The payload bytes do not match the header checksum — bit rot or
    /// partial overwrite.
    CrcMismatch {
        /// Checksum recorded in the frame header.
        expected: u32,
        /// Checksum recomputed over the payload actually on disk.
        found: u32,
    },
    /// The frame is intact but its payload does not deserialize into a
    /// sampler snapshot.
    Corrupt {
        /// The deserialization failure.
        what: String,
    },
    /// No checkpoint exists at the requested location.
    NoCheckpoint {
        /// The path that was probed.
        path: String,
    },
}

impl ResilienceError {
    /// Whether retrying the same operation can plausibly succeed.
    ///
    /// Only [`ResilienceError::Io`] is transient: an OS read or write
    /// can fail once (EINTR, NFS hiccup, contended rename) and work on
    /// the next attempt. Every structural diagnosis — bad magic, version
    /// skew, truncation, checksum or payload corruption, or a missing
    /// file — describes the bytes on disk, which a retry will read back
    /// unchanged; retrying those only delays the inevitable error.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::Io { .. })
    }
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { what } => write!(f, "checkpoint I/O failed: {what}"),
            Self::BadMagic => write!(f, "not a rheotex checkpoint (bad magic)"),
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            Self::Truncated => write!(f, "checkpoint file is truncated"),
            Self::CrcMismatch { expected, found } => write!(
                f,
                "checkpoint payload checksum mismatch (header {expected:#010x}, actual {found:#010x})"
            ),
            Self::Corrupt { what } => write!(f, "checkpoint payload is corrupt: {what}"),
            Self::NoCheckpoint { path } => write!(f, "no checkpoint found at {path}"),
        }
    }
}

impl Error for ResilienceError {}

#[cfg(test)]
mod tests {
    use super::ResilienceError;

    #[test]
    fn only_io_errors_are_transient() {
        assert!(ResilienceError::Io {
            what: "read: EINTR".into()
        }
        .is_transient());
        for permanent in [
            ResilienceError::BadMagic,
            ResilienceError::UnsupportedVersion { found: 99 },
            ResilienceError::Truncated,
            ResilienceError::CrcMismatch {
                expected: 1,
                found: 2,
            },
            ResilienceError::Corrupt { what: "x".into() },
            ResilienceError::NoCheckpoint { path: "/p".into() },
        ] {
            assert!(!permanent.is_transient(), "{permanent} must be permanent");
        }
    }

    #[test]
    fn displays_are_descriptive() {
        let crc = ResilienceError::CrcMismatch {
            expected: 0xDEADBEEF,
            found: 1,
        };
        let text = crc.to_string();
        assert!(text.contains("0xdeadbeef"), "{text}");
        assert!(ResilienceError::BadMagic.to_string().contains("magic"));
        assert!(ResilienceError::Truncated.to_string().contains("truncated"));
        let none = ResilienceError::NoCheckpoint {
            path: "/tmp/x".into(),
        };
        assert!(none.to_string().contains("/tmp/x"));
    }
}

//! The on-disk checkpoint frame.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  = b"RTEXCKPT"
//! 8       4     format version (currently 1)
//! 12      8     payload length in bytes
//! 20      4     CRC-32/IEEE of the payload
//! 24      n     payload (JSON-serialized SamplerSnapshot)
//! ```
//!
//! The header is validated front to back, so decoding distinguishes
//! "not ours" ([`ResilienceError::BadMagic`]), "from the future"
//! ([`ResilienceError::UnsupportedVersion`]), "torn write"
//! ([`ResilienceError::Truncated`]) and "bit rot"
//! ([`ResilienceError::CrcMismatch`]) — each a typed error, never a
//! panic or a silently wrong snapshot.

use crate::crc32::crc32;
use crate::error::ResilienceError;

/// Magic bytes identifying a rheotex checkpoint file.
pub const MAGIC: [u8; 8] = *b"RTEXCKPT";

/// Current checkpoint frame format version.
pub const VERSION: u32 = 1;

/// Total header size preceding the payload, in bytes.
pub const HEADER_LEN: usize = 24;

/// Wraps a serialized snapshot payload in a versioned, checksummed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Validates a frame and returns a view of its payload bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<&[u8], ResilienceError> {
    if bytes.len() < MAGIC.len() {
        // Too short even for the magic: if what *is* there matches a
        // magic prefix this is a torn header, otherwise a foreign file.
        if MAGIC.starts_with(bytes) && !bytes.is_empty() {
            return Err(ResilienceError::Truncated);
        }
        return Err(ResilienceError::BadMagic);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(ResilienceError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(ResilienceError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(ResilienceError::UnsupportedVersion { found: version });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"));
    let expected = u32::from_le_bytes(bytes[20..24].try_into().expect("4-byte slice"));
    let payload_len = usize::try_from(payload_len).map_err(|_| ResilienceError::Truncated)?;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < payload_len {
        return Err(ResilienceError::Truncated);
    }
    let payload = &payload[..payload_len];
    let found = crc32(payload);
    if found != expected {
        return Err(ResilienceError::CrcMismatch { expected, found });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_payload() {
        let payload = br#"{"engine":"joint","next_sweep":17}"#;
        let frame = encode_frame(payload);
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        assert_eq!(decode_frame(&frame).unwrap(), payload.as_slice());
    }

    #[test]
    fn roundtrips_an_empty_payload() {
        let frame = encode_frame(b"");
        assert_eq!(decode_frame(&frame).unwrap(), b"");
    }

    #[test]
    fn rejects_foreign_files() {
        assert_eq!(
            decode_frame(b"PNG\r\n\x1a\n garbage"),
            Err(ResilienceError::BadMagic)
        );
        assert_eq!(decode_frame(b""), Err(ResilienceError::BadMagic));
        assert_eq!(decode_frame(b"ZZ"), Err(ResilienceError::BadMagic));
    }

    #[test]
    fn rejects_future_versions() {
        let mut frame = encode_frame(b"{}");
        frame[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_frame(&frame),
            Err(ResilienceError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let frame = encode_frame(b"{\"k\":3,\"sweep\":12}");
        // Mid-magic, mid-header, and mid-payload cuts all diagnose as
        // truncation (a 0-byte file is indistinguishable from foreign).
        for cut in [4, 10, HEADER_LEN, frame.len() - 1] {
            assert_eq!(
                decode_frame(&frame[..cut]),
                Err(ResilienceError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn rejects_bit_rot_with_both_checksums() {
        let mut frame = encode_frame(b"{\"payload\":true}");
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        match decode_frame(&frame) {
            Err(ResilienceError::CrcMismatch { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn ignores_trailing_junk_beyond_declared_length() {
        // Extra bytes after the declared payload (e.g. a longer previous
        // file partially overwritten) must not corrupt the decode.
        let mut frame = encode_frame(b"{\"ok\":1}");
        frame.extend_from_slice(b"stale tail from an older, longer checkpoint");
        assert_eq!(decode_frame(&frame).unwrap(), b"{\"ok\":1}");
    }
}

//! Durable checkpointing and fault injection for the rheotex Gibbs
//! engines.
//!
//! `rheotex-core` defines *what* a checkpoint is (a
//! [`SamplerSnapshot`](rheotex_core::SamplerSnapshot) captured at a sweep
//! boundary) and *when* one is due (the
//! [`CheckpointSink`](rheotex_core::CheckpointSink) hook). This crate
//! supplies the durability half:
//!
//! * [`format`] — the on-disk frame: an 8-byte magic (`RTEXCKPT`), a
//!   format version, the payload length, and a CRC-32 over the payload,
//!   followed by the JSON-serialized snapshot. Decoding rejects foreign
//!   files, future versions, truncation, and bit rot with typed errors.
//! * [`CheckpointStore`] — atomically persists one "latest" snapshot per
//!   directory (temp file, `sync_all`, rename), so a crash mid-write can
//!   never destroy the previous good checkpoint.
//! * [`PeriodicCheckpointer`] — the [`CheckpointSink`] adapter samplers
//!   plug in: a sweep cadence, strict or tolerant failure handling, and
//!   `checkpoint.written` / `checkpoint.write_failed` counters through
//!   `rheotex-obs`.
//! * [`fault`] *(feature `fault-inject`)* — a deterministic, schedule-
//!   based [`FaultPlan`](fault::FaultPlan) that makes checkpoint writes
//!   fail or truncate on chosen occurrences, plus a scatter-matrix
//!   corruptor, so every recovery path is exercised by tests rather than
//!   merely claimed.
//!
//! [`CheckpointSink`]: rheotex_core::CheckpointSink

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod crc32;
pub mod error;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod format;
pub mod periodic;
pub mod store;

pub use error::ResilienceError;
pub use periodic::PeriodicCheckpointer;
pub use store::CheckpointStore;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ResilienceError>;

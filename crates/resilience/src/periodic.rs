//! The [`CheckpointSink`] adapter that samplers plug in.

use rheotex_core::{CheckpointSink, SamplerSnapshot};
use rheotex_obs::Obs;

use crate::store::CheckpointStore;

/// Writes a checkpoint to a [`CheckpointStore`] every `every` sweeps.
///
/// Two failure policies:
///
/// * **strict** (default) — a failed write aborts the fit with
///   [`rheotex_core::ModelError::Checkpoint`]. Use when a checkpoint is
///   a hard requirement (e.g. preemptible infrastructure).
/// * **tolerant** — a failed write is counted and the fit continues;
///   the run merely risks losing progress since the last good
///   checkpoint. Use when checkpoints are best-effort.
///
/// Either way, outcomes are observable: `checkpoint.written` and
/// `checkpoint.write_failed` counters flow through the attached
/// [`Obs`] recorder, and [`PeriodicCheckpointer::written`] /
/// [`PeriodicCheckpointer::failed`] expose running totals.
#[derive(Debug)]
pub struct PeriodicCheckpointer {
    store: CheckpointStore,
    every: usize,
    strict: bool,
    obs: Obs,
    written: usize,
    failed: usize,
}

impl PeriodicCheckpointer {
    /// Checkpoints to `store` every `every` sweeps, strictly.
    /// `every == 0` disables checkpointing entirely.
    pub fn new(store: CheckpointStore, every: usize) -> Self {
        Self {
            store,
            every,
            strict: true,
            obs: Obs::disabled(),
            written: 0,
            failed: 0,
        }
    }

    /// Switches to the tolerant policy: failed writes are counted but
    /// do not abort the fit.
    #[must_use]
    pub fn tolerant(mut self) -> Self {
        self.strict = false;
        self
    }

    /// Attaches an observability recorder for the checkpoint counters.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Checkpoint cadence in sweeps (0 = disabled).
    pub fn every(&self) -> usize {
        self.every
    }

    /// Borrow of the underlying store (e.g. to load for resume).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Number of checkpoints successfully written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Number of checkpoint writes that failed so far.
    pub fn failed(&self) -> usize {
        self.failed
    }
}

impl CheckpointSink for PeriodicCheckpointer {
    fn due(&mut self, sweep: usize) -> bool {
        self.every > 0 && (sweep + 1) % self.every == 0
    }

    fn save(&mut self, snapshot: SamplerSnapshot) -> Result<(), String> {
        match self.store.save(&snapshot) {
            Ok(()) => {
                self.written += 1;
                self.obs.counter("checkpoint.written", 1);
                Ok(())
            }
            Err(e) => {
                self.failed += 1;
                self.obs.counter("checkpoint.write_failed", 1);
                if self.strict {
                    Err(e.to_string())
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_matches_the_in_core_sink() {
        let store = CheckpointStore::new("/nonexistent/never-written");
        let mut ckpt = PeriodicCheckpointer::new(store, 5);
        let due: Vec<usize> = (0..20).filter(|&s| ckpt.due(s)).collect();
        assert_eq!(due, vec![4, 9, 14, 19]);
    }

    #[test]
    fn zero_cadence_is_never_due() {
        let store = CheckpointStore::new("/nonexistent/never-written");
        let mut ckpt = PeriodicCheckpointer::new(store, 0);
        assert!((0..100).all(|s| !ckpt.due(s)));
    }
}

//! CRC-32 (IEEE 802.3) over checkpoint payloads.
//!
//! Implemented in-crate with a compile-time lookup table so the
//! checkpoint format carries no extra dependencies. Uses the standard
//! reflected polynomial `0xEDB88320` with initial value and final XOR of
//! `0xFFFFFFFF` — the same parametrisation as zlib, PNG, and Ethernet,
//! so frames can be cross-checked with any off-the-shelf tool.

/// Reflected CRC-32/IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32/IEEE checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn is_sensitive_to_single_bit_flips() {
        let base = crc32(b"rheotex checkpoint payload");
        let flipped = crc32(b"rheotex checkpoint paylobd");
        assert_ne!(base, flipped);
    }
}

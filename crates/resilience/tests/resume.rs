//! End-to-end crash/recovery through the real file store: a fit killed
//! mid-run and resumed from disk must land on exactly the state the
//! uninterrupted run reaches — bit for bit, not approximately.

mod common;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::SamplerSnapshot;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{FitOptions, JointConfig, JointTopicModel, ModelError};
use rheotex_resilience::{CheckpointStore, PeriodicCheckpointer};

use common::{scratch_dir, two_cluster_docs, KillingSink};

#[test]
fn joint_fit_killed_and_resumed_from_disk_is_bit_identical() {
    let docs = two_cluster_docs(20);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();

    // The reference: one uninterrupted run. Checkpointing never touches
    // the RNG stream, so the plain fit is the ground truth.
    let full = model
        .fit_with(&mut ChaCha8Rng::seed_from_u64(31), &docs, FitOptions::new())
        .unwrap();

    // The victim: same seed, checkpointing to disk every 5 sweeps,
    // "killed" by a failing save after one checkpoint has landed.
    let store = CheckpointStore::new(scratch_dir("joint-kill"));
    let mut killer = KillingSink::new(store, 5, 1);
    let err = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().checkpoint(&mut killer),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Checkpoint { .. }), "{err:?}");

    // What the dead process left behind: the sweep-5 checkpoint.
    let snapshot = killer.store.load().unwrap();
    assert_eq!(snapshot.next_sweep(), 5);
    let SamplerSnapshot::Joint(snapshot) = snapshot else {
        panic!("wrong engine")
    };

    // Resume, checkpointing onward to the same store.
    let mut onward = PeriodicCheckpointer::new(killer.store, 5);
    let resumed = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new()
                .checkpoint(&mut onward)
                .resume(SamplerSnapshot::Joint(snapshot)),
        )
        .unwrap();

    assert_eq!(resumed.y, full.y);
    assert_eq!(resumed.ll_trace, full.ll_trace);
    assert_eq!(resumed.phi, full.phi);
    assert_eq!(resumed.theta, full.theta);

    // The resumed run kept checkpointing: sweeps 5..60 hit 11 more
    // cadence points, and the final snapshot covers the whole run.
    assert_eq!(onward.written(), 11);
    let last = onward.store().load().unwrap();
    assert_eq!(last.next_sweep(), 60);

    // Resuming from that final snapshot runs zero sweeps (finalize
    // only) and reproduces the same fit again.
    let SamplerSnapshot::Joint(last) = last else {
        panic!("wrong engine")
    };
    let mut sink = PeriodicCheckpointer::new(CheckpointStore::new(scratch_dir("joint-fin")), 0);
    let again = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new()
                .checkpoint(&mut sink)
                .resume(SamplerSnapshot::Joint(last)),
        )
        .unwrap();
    assert_eq!(again.y, full.y);
    assert_eq!(again.ll_trace, full.ll_trace);
    assert_eq!(sink.written(), 0);
}

/// The parallel kernel under the same crash/recovery discipline: a fit
/// at `threads = 2` killed mid-run and resumed from disk must equal the
/// uninterrupted parallel fit — and since the chunked kernel's output is
/// thread-count invariant, resuming at a *different* thread count must
/// land on the same bits too.
#[test]
fn parallel_fit_killed_and_resumed_from_disk_is_bit_identical() {
    let docs = two_cluster_docs(20);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();

    let full = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().threads(2),
        )
        .unwrap();

    let store = CheckpointStore::new(scratch_dir("joint-par-kill"));
    let mut killer = KillingSink::new(store, 5, 1);
    let err = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().threads(2).checkpoint(&mut killer),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Checkpoint { .. }), "{err:?}");

    let snapshot = killer.store.load().unwrap();
    assert_eq!(snapshot.next_sweep(), 5);

    // The resume path takes its RNG state from the snapshot; the passed
    // generator's seed is irrelevant.
    for threads in [2usize, 8] {
        let mut onward = PeriodicCheckpointer::new(
            CheckpointStore::new(scratch_dir(&format!("joint-par-onward-{threads}"))),
            5,
        );
        let resumed = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new()
                    .threads(threads)
                    .checkpoint(&mut onward)
                    .resume(snapshot.clone()),
            )
            .unwrap();
        assert_eq!(resumed.y, full.y, "threads={threads}");
        assert_eq!(resumed.ll_trace, full.ll_trace, "threads={threads}");
        assert_eq!(resumed.phi, full.phi, "threads={threads}");
        assert_eq!(resumed.theta, full.theta, "threads={threads}");
        // The resumed run kept checkpointing to its own store.
        assert_eq!(onward.written(), 11);
    }
}

/// The sparse kernel under the same crash/recovery discipline: a sparse
/// fit killed mid-run and resumed from disk (with the nonzero-topic
/// lists rebuilt from the persisted dense counts) must equal the
/// uninterrupted sparse fit bit for bit.
#[test]
fn sparse_fit_killed_and_resumed_from_disk_is_bit_identical() {
    use rheotex_core::GibbsKernel;

    let docs = two_cluster_docs(20);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let opts = || FitOptions::new().kernel(GibbsKernel::Sparse);

    let full = model
        .fit_with(&mut ChaCha8Rng::seed_from_u64(31), &docs, opts())
        .unwrap();

    let store = CheckpointStore::new(scratch_dir("joint-sparse-kill"));
    let mut killer = KillingSink::new(store, 5, 1);
    let err = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            opts().checkpoint(&mut killer),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Checkpoint { .. }), "{err:?}");

    let snapshot = killer.store.load().unwrap();
    assert_eq!(snapshot.next_sweep(), 5);

    let mut onward = PeriodicCheckpointer::new(killer.store, 5);
    let resumed = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            opts().checkpoint(&mut onward).resume(snapshot),
        )
        .unwrap();
    assert_eq!(resumed.y, full.y);
    assert_eq!(resumed.ll_trace, full.ll_trace);
    assert_eq!(resumed.phi, full.phi);
    assert_eq!(resumed.theta, full.theta);
    assert_eq!(onward.written(), 11);
}

/// The composed sparse-parallel kernel under the same crash/recovery
/// discipline: a fit at `threads = 2` killed mid-run and resumed from
/// disk (nonzero-topic lists rebuilt from the persisted dense counts)
/// must equal the uninterrupted fit — and since the chunk grid makes the
/// output thread-count invariant, resuming at a different thread count
/// must land on the same bits too.
#[test]
fn sparse_parallel_fit_killed_and_resumed_from_disk_is_bit_identical() {
    use rheotex_core::GibbsKernel;

    let docs = two_cluster_docs(20);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let opts = || {
        FitOptions::new()
            .kernel(GibbsKernel::SparseParallel)
            .threads(2)
    };

    let full = model
        .fit_with(&mut ChaCha8Rng::seed_from_u64(31), &docs, opts())
        .unwrap();

    let store = CheckpointStore::new(scratch_dir("joint-sp-kill"));
    let mut killer = KillingSink::new(store, 5, 1);
    let err = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            opts().checkpoint(&mut killer),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Checkpoint { .. }), "{err:?}");

    let snapshot = killer.store.load().unwrap();
    assert_eq!(snapshot.next_sweep(), 5);

    for threads in [2usize, 8] {
        let mut onward = PeriodicCheckpointer::new(
            CheckpointStore::new(scratch_dir(&format!("joint-sp-onward-{threads}"))),
            5,
        );
        let resumed = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new()
                    .kernel(GibbsKernel::SparseParallel)
                    .threads(threads)
                    .checkpoint(&mut onward)
                    .resume(snapshot.clone()),
            )
            .unwrap();
        assert_eq!(resumed.y, full.y, "threads={threads}");
        assert_eq!(resumed.ll_trace, full.ll_trace, "threads={threads}");
        assert_eq!(resumed.phi, full.phi, "threads={threads}");
        assert_eq!(resumed.theta, full.theta, "threads={threads}");
        assert_eq!(onward.written(), 11);
    }
}

/// The alias-table MH kernel under the same crash/recovery discipline:
/// a fit at `threads = 2` killed mid-run and resumed from disk (the
/// per-word alias tables are never persisted — they are rebuilt from
/// the restored dense counts at the top of every sweep) must equal the
/// uninterrupted fit — and since the chunk grid makes the output
/// thread-count invariant, resuming at a different thread count must
/// land on the same bits too.
#[test]
fn alias_fit_killed_and_resumed_from_disk_is_bit_identical() {
    use rheotex_core::GibbsKernel;

    let docs = two_cluster_docs(20);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let opts = || FitOptions::new().kernel(GibbsKernel::Alias).threads(2);

    let full = model
        .fit_with(&mut ChaCha8Rng::seed_from_u64(31), &docs, opts())
        .unwrap();

    let store = CheckpointStore::new(scratch_dir("joint-alias-kill"));
    let mut killer = KillingSink::new(store, 5, 1);
    let err = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            opts().checkpoint(&mut killer),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Checkpoint { .. }), "{err:?}");

    let snapshot = killer.store.load().unwrap();
    assert_eq!(snapshot.next_sweep(), 5);

    for threads in [2usize, 8] {
        let mut onward = PeriodicCheckpointer::new(
            CheckpointStore::new(scratch_dir(&format!("joint-alias-onward-{threads}"))),
            5,
        );
        let resumed = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new()
                    .kernel(GibbsKernel::Alias)
                    .threads(threads)
                    .checkpoint(&mut onward)
                    .resume(snapshot.clone()),
            )
            .unwrap();
        assert_eq!(resumed.y, full.y, "threads={threads}");
        assert_eq!(resumed.ll_trace, full.ll_trace, "threads={threads}");
        assert_eq!(resumed.phi, full.phi, "threads={threads}");
        assert_eq!(resumed.theta, full.theta, "threads={threads}");
        assert_eq!(onward.written(), 11);
    }

    // Cross-class rejection through the on-disk store: the persisted
    // alias snapshot refuses to resume under any other kernel class.
    for resume_opts in [
        FitOptions::new(),                             // serial
        FitOptions::new().threads(2),                  // parallel
        FitOptions::new().kernel(GibbsKernel::Sparse), // sparse
        FitOptions::new()
            .kernel(GibbsKernel::SparseParallel)
            .threads(2), // sparse-parallel
    ] {
        let err = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                resume_opts.resume(snapshot.clone()),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::ResumeMismatch { .. }), "{err}");
    }
}

#[test]
fn lda_fit_killed_and_resumed_from_disk_is_bit_identical() {
    let docs = two_cluster_docs(15);
    let config = LdaConfig {
        n_topics: 2,
        vocab_size: 4,
        alpha: 0.5,
        gamma: 0.1,
        sweeps: 40,
        burn_in: 20,
    };
    let model = LdaModel::new(config).unwrap();
    let full = model
        .fit_with(&mut ChaCha8Rng::seed_from_u64(8), &docs, FitOptions::new())
        .unwrap();

    let store = CheckpointStore::new(scratch_dir("lda-kill"));
    let mut killer = KillingSink::new(store, 10, 1);
    model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(8),
            &docs,
            FitOptions::new().checkpoint(&mut killer),
        )
        .unwrap_err();

    let SamplerSnapshot::Lda(snapshot) = killer.store.load().unwrap() else {
        panic!("wrong engine")
    };
    assert_eq!(snapshot.next_sweep, 10);
    let mut onward = PeriodicCheckpointer::new(killer.store, 10);
    let resumed = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new()
                .checkpoint(&mut onward)
                .resume(SamplerSnapshot::Lda(snapshot)),
        )
        .unwrap();

    assert_eq!(resumed.ll_trace, full.ll_trace);
    assert_eq!(resumed.phi, full.phi);
    assert_eq!(resumed.theta, full.theta);
}

#[test]
fn gmm_fit_killed_and_resumed_from_disk_is_bit_identical() {
    let docs = two_cluster_docs(15);
    let model = GmmModel::new(GmmConfig::new(2)).unwrap();
    let full = model
        .fit_with(&mut ChaCha8Rng::seed_from_u64(4), &docs, FitOptions::new())
        .unwrap();

    let store = CheckpointStore::new(scratch_dir("gmm-kill"));
    let mut killer = KillingSink::new(store, 20, 1);
    model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(4),
            &docs,
            FitOptions::new().checkpoint(&mut killer),
        )
        .unwrap_err();

    let SamplerSnapshot::Gmm(snapshot) = killer.store.load().unwrap() else {
        panic!("wrong engine")
    };
    assert_eq!(snapshot.next_sweep, 20);
    let mut onward = PeriodicCheckpointer::new(killer.store, 20);
    let resumed = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new()
                .checkpoint(&mut onward)
                .resume(SamplerSnapshot::Gmm(snapshot)),
        )
        .unwrap();

    assert_eq!(resumed.assignments, full.assignments);
    assert_eq!(resumed.ll_trace, full.ll_trace);
    assert_eq!(resumed.counts, full.counts);
}

//! Shared fixtures for the resilience integration tests.
#![allow(dead_code)]

use std::path::PathBuf;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::{CheckpointSink, SamplerSnapshot};
use rheotex_core::ModelDoc;
use rheotex_linalg::Vector;
use rheotex_resilience::CheckpointStore;

/// A fresh, empty scratch directory unique to `tag` (tests run in
/// parallel within one process, so the pid alone is not enough).
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rheotex-resilience-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two well-separated synthetic recipe clusters, mirroring the fixture
/// the core engine tests use: cluster A speaks terms {0,1} with gel near
/// (2,9,9); cluster B speaks terms {2,3} with gel near (9,4,9).
pub fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
    let mut r = ChaCha8Rng::seed_from_u64(77);
    let mut docs = Vec::new();
    for i in 0..(2 * n_per) {
        let cluster = i % 2;
        let terms: Vec<usize> = (0..4).map(|j| 2 * cluster + (j % 2)).collect();
        let jitter = |r: &mut ChaCha8Rng| r.gen_range(-0.2..0.2);
        let gel = if cluster == 0 {
            Vector::new(vec![2.0 + jitter(&mut r), 9.0 + jitter(&mut r), 9.0])
        } else {
            Vector::new(vec![9.0 + jitter(&mut r), 4.0 + jitter(&mut r), 9.0])
        };
        let emulsion = if cluster == 0 {
            Vector::new(vec![1.0, 9.0, 9.0, 9.0, 0.5 + jitter(&mut r), 9.0])
        } else {
            Vector::new(vec![3.0, 9.0, 9.0, 1.0 + jitter(&mut r), 9.0, 9.0])
        };
        docs.push(ModelDoc::new(i as u64, terms, gel, emulsion));
    }
    docs
}

/// A sink that persists to a real [`CheckpointStore`] but simulates a
/// crash: after `kill_after` successful saves the next save fails, which
/// strict checkpointing turns into a fit-aborting error. The on-disk
/// state is exactly what a killed process would leave behind.
pub struct KillingSink {
    pub store: CheckpointStore,
    pub every: usize,
    pub saves: usize,
    pub kill_after: usize,
}

impl KillingSink {
    pub fn new(store: CheckpointStore, every: usize, kill_after: usize) -> Self {
        Self {
            store,
            every,
            saves: 0,
            kill_after,
        }
    }
}

impl CheckpointSink for KillingSink {
    fn due(&mut self, sweep: usize) -> bool {
        self.every > 0 && (sweep + 1) % self.every == 0
    }

    fn save(&mut self, snapshot: SamplerSnapshot) -> Result<(), String> {
        if self.saves == self.kill_after {
            return Err("simulated process kill".to_string());
        }
        self.store.save(&snapshot).map_err(|e| e.to_string())?;
        self.saves += 1;
        Ok(())
    }
}

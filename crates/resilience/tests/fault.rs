//! Fault-injected recovery paths (requires `--features fault-inject`).
//!
//! Three injected disasters, three demanded recoveries:
//!
//! * a checkpoint *write* fails → a tolerant run keeps sampling and the
//!   failure is counted, a strict run aborts with a typed error;
//! * a checkpoint write is *torn* (crash mid-write) → loading the torn
//!   file yields a typed diagnosis, never garbage state;
//! * a snapshot's scatter matrix is *corrupted* into indefiniteness →
//!   the resumed fit survives through the ridge-jitter retry path and
//!   reports how often it had to.
#![cfg(feature = "fault-inject")]

mod common;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::{MemoryCheckpointSink, SamplerSnapshot};
use rheotex_core::{FitOptions, JointConfig, JointTopicModel, ModelError, VecObserver};
use rheotex_obs::{MemorySink, Obs};
use rheotex_resilience::fault::{corrupt_scatter, FaultPlan};
use rheotex_resilience::{CheckpointStore, PeriodicCheckpointer, ResilienceError};

use common::{scratch_dir, two_cluster_docs};

#[test]
fn tolerant_run_survives_injected_write_failures_and_counts_them() {
    let docs = two_cluster_docs(20);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let full = model
        .fit_with(&mut ChaCha8Rng::seed_from_u64(31), &docs, FitOptions::new())
        .unwrap();

    // The second checkpoint write (0-based write 1) fails.
    let store =
        CheckpointStore::new(scratch_dir("tolerant")).with_faults(FaultPlan::new().fail_write(1));
    let sink = MemorySink::default();
    let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
    let mut ckpt = PeriodicCheckpointer::new(store, 5).tolerant().with_obs(obs);

    let fit = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().checkpoint(&mut ckpt),
        )
        .unwrap();

    // The run finished, bit-identical to the unfaulted one…
    assert_eq!(fit.y, full.y);
    assert_eq!(fit.ll_trace, full.ll_trace);
    // …exactly one of the 12 cadence points was lost…
    assert_eq!(ckpt.failed(), 1);
    assert_eq!(ckpt.written(), 11);
    // …the failure is visible in the metrics stream…
    let failures = sink
        .events()
        .iter()
        .filter(|e| e.name == "checkpoint.write_failed")
        .count();
    assert_eq!(failures, 1);
    // …and the surviving final checkpoint is intact and complete.
    assert_eq!(ckpt.store().load().unwrap().next_sweep(), 60);
}

#[test]
fn strict_run_aborts_on_injected_write_failure() {
    let docs = two_cluster_docs(10);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let store =
        CheckpointStore::new(scratch_dir("strict")).with_faults(FaultPlan::new().fail_write(0));
    let mut ckpt = PeriodicCheckpointer::new(store, 5);
    let err = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().checkpoint(&mut ckpt),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Checkpoint { .. }), "{err:?}");
    assert_eq!(ckpt.failed(), 1);
    assert!(!ckpt.store().exists());
}

#[test]
fn torn_write_is_diagnosed_on_load_and_prior_checkpoint_is_preserved() {
    let docs = two_cluster_docs(10);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();

    // Write 0 lands cleanly; write 1 is torn mid-frame.
    let store =
        CheckpointStore::new(scratch_dir("torn")).with_faults(FaultPlan::new().truncate_write(1));
    let mut ckpt = PeriodicCheckpointer::new(store, 5).tolerant();
    model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().checkpoint(&mut ckpt),
        )
        .unwrap();

    // The torn write replaced the good checkpoint (its rename still
    // happened), but later cadence points overwrote it with clean
    // frames. Tear the final file to observe the load-time diagnosis.
    let path = ckpt.store().checkpoint_path();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        ckpt.store().load(),
        Err(ResilienceError::Truncated | ResilienceError::CrcMismatch { .. })
    ));
}

#[test]
fn torn_write_with_no_later_save_leaves_a_typed_load_error() {
    let docs = two_cluster_docs(10);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();

    // Only the final cadence point (write 11 of every=5 over 60 sweeps)
    // is torn, so the file on disk at the end IS the torn frame.
    let store = CheckpointStore::new(scratch_dir("torn-last"))
        .with_faults(FaultPlan::new().truncate_write(11));
    let mut ckpt = PeriodicCheckpointer::new(store, 5).tolerant();
    model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().checkpoint(&mut ckpt),
        )
        .unwrap();

    let err = ckpt.store().load().unwrap_err();
    assert!(
        matches!(
            err,
            ResilienceError::Truncated | ResilienceError::CrcMismatch { .. }
        ),
        "{err:?}"
    );
}

/// A healthy early snapshot for the read-retry tests.
fn early_snapshot() -> SamplerSnapshot {
    let docs = two_cluster_docs(10);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let mut sink = MemoryCheckpointSink::new(5);
    model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().checkpoint(&mut sink),
        )
        .unwrap();
    sink.snapshots[0].clone()
}

#[test]
fn transient_read_failures_are_absorbed_by_bounded_retry() {
    let snapshot = early_snapshot();
    let store = CheckpointStore::new(scratch_dir("read-retry"));
    store.save(&snapshot).unwrap();
    // Re-open with the first two loads scheduled to fail transiently.
    let store = CheckpointStore::new(store.dir().to_path_buf())
        .with_faults(FaultPlan::new().fail_read(0).fail_read(1));

    let mut backoffs = Vec::new();
    let loaded = store
        .load_with_retry(3, |retry| backoffs.push(retry))
        .unwrap();
    assert_eq!(loaded.next_sweep(), snapshot.next_sweep());
    // Two failed attempts -> the backoff hook ran before retries 0 and 1.
    assert_eq!(backoffs, vec![0, 1]);
}

#[test]
fn read_retry_budget_exhaustion_surfaces_the_transient_error() {
    let snapshot = early_snapshot();
    let store = CheckpointStore::new(scratch_dir("read-retry-exhaust"));
    store.save(&snapshot).unwrap();
    let store = CheckpointStore::new(store.dir().to_path_buf())
        .with_faults(FaultPlan::new().fail_read(0).fail_read(1).fail_read(2));

    let mut backoffs = Vec::new();
    let err = store
        .load_with_retry(2, |retry| backoffs.push(retry))
        .unwrap_err();
    assert!(matches!(err, ResilienceError::Io { .. }), "{err:?}");
    assert!(err.is_transient());
    assert_eq!(backoffs, vec![0, 1]);
}

#[test]
fn permanent_load_errors_are_never_retried() {
    let snapshot = early_snapshot();
    let store = CheckpointStore::new(scratch_dir("read-retry-permanent"));
    store.save(&snapshot).unwrap();
    // Tear the frame: the diagnosis is structural, not transient.
    let path = store.checkpoint_path();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let mut backoffs = Vec::new();
    let err = store
        .load_with_retry(5, |retry| backoffs.push(retry))
        .unwrap_err();
    assert!(
        matches!(
            err,
            ResilienceError::Truncated | ResilienceError::CrcMismatch { .. }
        ),
        "{err:?}"
    );
    assert!(!err.is_transient());
    assert!(backoffs.is_empty(), "permanent errors must not back off");
}

#[test]
fn corrupted_scatter_is_recovered_by_jitter_retries_on_resume() {
    let docs = two_cluster_docs(20);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();

    // Capture a healthy early snapshot in memory.
    let mut sink = MemoryCheckpointSink::new(5);
    model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(31),
            &docs,
            FitOptions::new().checkpoint(&mut sink),
        )
        .unwrap();
    let SamplerSnapshot::Joint(healthy) = sink.snapshots[0].clone() else {
        panic!("wrong engine")
    };
    assert_eq!(healthy.next_sweep, 5);

    // Control: resuming the healthy snapshot needs zero jitter retries.
    let mut clean_obs = VecObserver::default();
    let clean = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new()
                .observer(&mut clean_obs)
                .resume(SamplerSnapshot::Joint(healthy.clone())),
        )
        .unwrap();
    assert!(clean_obs.sweeps.iter().all(|s| s.jitter_retries == 0));

    // Injected disaster: make topic 0's gel scatter indefinite. The
    // observation count is untouched, so resume validation accepts the
    // snapshot — the corruption must be survived numerically instead.
    let mut corrupted = healthy;
    corrupt_scatter(&mut corrupted.gel_stats[0], 1e3);

    let mut obs = VecObserver::default();
    let fit = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new()
                .observer(&mut obs)
                .resume(SamplerSnapshot::Joint(corrupted)),
        )
        .unwrap();

    // The fit completed without panicking and the recovery is visible:
    // the Normal-Wishart resample needed ridge-jitter retries.
    let retries: usize = obs.sweeps.iter().map(|s| s.jitter_retries).sum();
    assert!(retries > 0, "expected jitter retries on corrupted scatter");
    assert_eq!(fit.ll_trace.len(), clean.ll_trace.len());
    assert!(fit.ll_trace.iter().all(|ll| ll.is_finite()));
}

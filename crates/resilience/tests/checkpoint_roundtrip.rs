//! Store-level durability: what goes in comes back out, and anything
//! that *can't* come back out is diagnosed with a typed error — never a
//! panic, never a silently wrong snapshot.

mod common;

use std::fs;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::{LdaSnapshot, RngState, SamplerSnapshot};
use rheotex_core::lda::LdaConfig;
use rheotex_resilience::{CheckpointStore, ResilienceError};

use common::scratch_dir;

fn snapshot(next_sweep: usize) -> SamplerSnapshot {
    SamplerSnapshot::Lda(LdaSnapshot {
        config: LdaConfig {
            n_topics: 2,
            vocab_size: 4,
            alpha: 0.5,
            gamma: 0.1,
            sweeps: 40,
            burn_in: 20,
        },
        next_sweep,
        doc_fingerprint: 0xfeed_beef,
        z: vec![vec![0, 1], vec![1, 0]],
        n_dk: vec![1, 1, 1, 1],
        n_kw: vec![1, 0, 0, 1, 0, 1, 1, 0],
        n_k: vec![2, 2],
        phi_acc: vec![0.0; 8],
        theta_acc: vec![0.0; 4],
        n_samples: 0,
        ll_trace: vec![-10.0; next_sweep],
        rng: RngState::capture(&ChaCha8Rng::seed_from_u64(5)),
    })
}

#[test]
fn save_load_roundtrip_preserves_the_snapshot() {
    let store = CheckpointStore::new(scratch_dir("roundtrip"));
    assert!(!store.exists());
    store.save(&snapshot(7)).unwrap();
    assert!(store.exists());

    let loaded = store.load().unwrap();
    assert_eq!(loaded.engine(), "lda");
    assert_eq!(loaded.next_sweep(), 7);
    let SamplerSnapshot::Lda(lda) = loaded else {
        panic!("wrong variant")
    };
    assert_eq!(lda.doc_fingerprint, 0xfeed_beef);
    assert_eq!(lda.z, vec![vec![0, 1], vec![1, 0]]);
    assert_eq!(lda.ll_trace.len(), 7);
}

#[test]
fn save_replaces_the_previous_checkpoint() {
    let store = CheckpointStore::new(scratch_dir("replace"));
    store.save(&snapshot(5)).unwrap();
    store.save(&snapshot(10)).unwrap();
    assert_eq!(store.load().unwrap().next_sweep(), 10);
}

#[test]
fn missing_checkpoint_is_a_typed_error() {
    let store = CheckpointStore::new(scratch_dir("missing"));
    match store.load() {
        Err(ResilienceError::NoCheckpoint { path }) => {
            assert!(path.ends_with("latest.ckpt"), "{path}");
        }
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }
}

#[test]
fn truncated_file_is_diagnosed_not_deserialized() {
    let store = CheckpointStore::new(scratch_dir("truncated"));
    store.save(&snapshot(5)).unwrap();
    let path = store.checkpoint_path();
    let bytes = fs::read(&path).unwrap();
    // Cut the file at several depths, as a torn write would.
    for cut in [0, 3, 12, bytes.len() / 2, bytes.len() - 1] {
        fs::write(&path, &bytes[..cut]).unwrap();
        let err = store.load().unwrap_err();
        assert!(
            matches!(err, ResilienceError::Truncated | ResilienceError::BadMagic),
            "cut={cut}: {err:?}"
        );
    }
}

#[test]
fn bit_rot_is_caught_by_the_crc() {
    let store = CheckpointStore::new(scratch_dir("bitrot"));
    store.save(&snapshot(5)).unwrap();
    let path = store.checkpoint_path();
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        store.load(),
        Err(ResilienceError::CrcMismatch { .. })
    ));
}

#[test]
fn foreign_and_future_files_are_rejected() {
    let store = CheckpointStore::new(scratch_dir("foreign"));
    store.save(&snapshot(5)).unwrap();
    let path = store.checkpoint_path();

    fs::write(&path, b"definitely not a checkpoint file").unwrap();
    assert_eq!(store.load().unwrap_err(), ResilienceError::BadMagic);

    // Same frame, version field bumped past what we understand.
    store.save(&snapshot(5)).unwrap();
    let mut bytes = fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert_eq!(
        store.load().unwrap_err(),
        ResilienceError::UnsupportedVersion { found: 7 }
    );
}

#[test]
fn valid_frame_with_mangled_payload_is_corrupt_not_a_panic() {
    let store = CheckpointStore::new(scratch_dir("mangled"));
    // A perfectly framed file whose payload is not a snapshot.
    let frame = rheotex_resilience::format::encode_frame(b"{\"not\":\"a snapshot\"}");
    fs::create_dir_all(store.dir()).unwrap();
    fs::write(store.checkpoint_path(), frame).unwrap();
    assert!(matches!(store.load(), Err(ResilienceError::Corrupt { .. })));
}
